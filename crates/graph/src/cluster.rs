//! Keyword clusters extracted from the pruned graph `G′`.
//!
//! The paper reports "all vertices (with their associated edges) in each
//! biconnected component as a cluster"; the set of clusters for `G′` is "the
//! set of all biconnected components of `G′` plus all trees connecting those
//! components". Two extraction modes are provided:
//!
//! * [`ClusterExtractionMode::Biconnected`] — one cluster per biconnected
//!   component (bridges become two-keyword clusters);
//! * [`ClusterExtractionMode::Connected`] — one cluster per connected
//!   component, i.e. biconnected components merged with the trees connecting
//!   them (this matches the cluster counts quoted in Section 5.3).

use bsc_corpus::timeline::IntervalId;
use bsc_corpus::vocabulary::{KeywordId, Vocabulary};
use bsc_storage::Result as StorageResult;

use crate::biconnected::BiconnectedComponents;
use crate::components::connected_components;
use crate::csr::CsrGraph;
use crate::prune::PrunedGraph;

/// A cluster of correlated keywords for one temporal interval.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordCluster {
    /// Index of the cluster within its interval.
    pub id: u32,
    /// The temporal interval the cluster belongs to.
    pub interval: IntervalId,
    /// Distinct member keywords, sorted by id.
    pub keywords: Vec<KeywordId>,
    /// The correlated edges inside the cluster: `(u, v, ρ)`.
    pub edges: Vec<(KeywordId, KeywordId, f64)>,
}

impl KeywordCluster {
    /// Build a cluster from raw parts, normalizing the keyword list.
    pub fn new(
        id: u32,
        interval: IntervalId,
        keywords: impl IntoIterator<Item = KeywordId>,
        edges: Vec<(KeywordId, KeywordId, f64)>,
    ) -> Self {
        let mut keywords: Vec<KeywordId> = keywords.into_iter().collect();
        keywords.sort_unstable();
        keywords.dedup();
        KeywordCluster {
            id,
            interval,
            keywords,
            edges,
        }
    }

    /// Number of member keywords.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// True if the cluster has no keywords.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// Does the cluster contain keyword `k`?
    pub fn contains(&self, k: KeywordId) -> bool {
        self.keywords.binary_search(&k).is_ok()
    }

    /// Size of the intersection of the member keyword sets.
    pub fn intersection_size(&self, other: &KeywordCluster) -> usize {
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < self.keywords.len() && j < other.keywords.len() {
            match self.keywords[i].cmp(&other.keywords[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Jaccard similarity of the member keyword sets.
    pub fn jaccard(&self, other: &KeywordCluster) -> f64 {
        let inter = self.intersection_size(other);
        let union = self.keywords.len() + other.keywords.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Sum of the edge weights (ρ values) inside the cluster.
    pub fn total_edge_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Render the cluster's keywords using a vocabulary, sorted
    /// alphabetically (for reports and examples).
    pub fn render(&self, vocabulary: &Vocabulary) -> String {
        vocabulary.render_set(&self.keywords)
    }
}

/// How clusters are carved out of the pruned keyword graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterExtractionMode {
    /// One cluster per biconnected component (the paper's primary definition).
    #[default]
    Biconnected,
    /// One cluster per connected component (biconnected components plus the
    /// trees connecting them).
    Connected,
}

/// Extracts keyword clusters from a pruned graph.
#[derive(Debug, Clone, Copy)]
pub struct ClusterExtractor {
    /// Extraction mode.
    pub mode: ClusterExtractionMode,
    /// Minimum number of keywords for a cluster to be reported.
    pub min_keywords: usize,
    /// Memory limit (in edge-stack entries) for the biconnected-component
    /// computation; `None` keeps the stack in memory.
    pub max_edges_in_memory: Option<usize>,
}

impl Default for ClusterExtractor {
    fn default() -> Self {
        ClusterExtractor {
            mode: ClusterExtractionMode::Biconnected,
            min_keywords: 2,
            max_edges_in_memory: None,
        }
    }
}

impl ClusterExtractor {
    /// Extract clusters from `graph` for interval `interval`.
    pub fn extract(
        &self,
        graph: &PrunedGraph,
        interval: IntervalId,
    ) -> StorageResult<Vec<KeywordCluster>> {
        let csr = CsrGraph::from_pruned(graph);
        let mut clusters = Vec::new();
        match self.mode {
            ClusterExtractionMode::Biconnected => {
                let algo = BiconnectedComponents {
                    max_edges_in_memory: self.max_edges_in_memory,
                };
                let result = algo.run(&csr)?;
                for (i, component) in result.components.iter().enumerate() {
                    let vertices = result.component_vertices(&csr, i);
                    if vertices.len() < self.min_keywords {
                        continue;
                    }
                    let keywords: Vec<KeywordId> =
                        vertices.iter().map(|&n| csr.keyword(n)).collect();
                    let edges = component
                        .iter()
                        .map(|&e| {
                            let (a, b, w) = csr.edge(e);
                            (csr.keyword(a), csr.keyword(b), w)
                        })
                        .collect();
                    clusters.push(KeywordCluster::new(
                        clusters.len() as u32,
                        interval,
                        keywords,
                        edges,
                    ));
                }
            }
            ClusterExtractionMode::Connected => {
                let components = connected_components(&csr);
                for component in components {
                    if component.len() < self.min_keywords {
                        continue;
                    }
                    let member: std::collections::HashSet<u32> =
                        component.iter().copied().collect();
                    let keywords: Vec<KeywordId> =
                        component.iter().map(|&n| csr.keyword(n)).collect();
                    let mut edges = Vec::new();
                    for eid in 0..csr.num_edges() as u32 {
                        let (a, b, w) = csr.edge(eid);
                        if member.contains(&a) && member.contains(&b) {
                            edges.push((csr.keyword(a), csr.keyword(b), w));
                        }
                    }
                    clusters.push(KeywordCluster::new(
                        clusters.len() as u32,
                        interval,
                        keywords,
                        edges,
                    ));
                }
            }
        }
        Ok(clusters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::CorrelatedEdge;

    fn kw(id: u32) -> KeywordId {
        KeywordId(id)
    }

    fn pruned(edges: &[(u32, u32, f64)]) -> PrunedGraph {
        PrunedGraph::from_edges(
            100,
            edges
                .iter()
                .map(|&(u, v, rho)| CorrelatedEdge {
                    u: kw(u.min(v)),
                    v: kw(u.max(v)),
                    count: 10,
                    chi_square: 50.0,
                    rho,
                })
                .collect(),
        )
    }

    /// Figure 3 shaped graph: triangle {1,2,3}, bridge 2-4, triangle {4,5,6},
    /// bridge 4-7.
    fn figure3() -> PrunedGraph {
        pruned(&[
            (1, 2, 0.9),
            (2, 3, 0.8),
            (3, 1, 0.7),
            (2, 4, 0.6),
            (4, 5, 0.9),
            (5, 6, 0.8),
            (6, 4, 0.7),
            (4, 7, 0.5),
        ])
    }

    #[test]
    fn biconnected_mode_matches_paper_example() {
        let clusters = ClusterExtractor::default()
            .extract(&figure3(), IntervalId(0))
            .unwrap();
        let mut sets: Vec<Vec<u32>> = clusters
            .iter()
            .map(|c| c.keywords.iter().map(|k| k.0).collect())
            .collect();
        sets.sort();
        assert_eq!(
            sets,
            vec![vec![1, 2, 3], vec![2, 4], vec![4, 5, 6], vec![4, 7]]
        );
    }

    #[test]
    fn connected_mode_merges_everything() {
        let extractor = ClusterExtractor {
            mode: ClusterExtractionMode::Connected,
            ..Default::default()
        };
        let clusters = extractor.extract(&figure3(), IntervalId(0)).unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 7);
        assert_eq!(clusters[0].edges.len(), 8);
    }

    #[test]
    fn min_keywords_filters_small_clusters() {
        let extractor = ClusterExtractor {
            min_keywords: 3,
            ..Default::default()
        };
        let clusters = extractor.extract(&figure3(), IntervalId(0)).unwrap();
        assert_eq!(clusters.len(), 2);
        assert!(clusters.iter().all(|c| c.len() >= 3));
    }

    #[test]
    fn cluster_ids_are_dense_and_interval_is_propagated() {
        let clusters = ClusterExtractor::default()
            .extract(&figure3(), IntervalId(5))
            .unwrap();
        for (i, cluster) in clusters.iter().enumerate() {
            assert_eq!(cluster.id, i as u32);
            assert_eq!(cluster.interval, IntervalId(5));
        }
    }

    #[test]
    fn jaccard_and_intersection() {
        let a = KeywordCluster::new(0, IntervalId(0), [kw(1), kw(2), kw(3)], vec![]);
        let b = KeywordCluster::new(1, IntervalId(1), [kw(2), kw(3), kw(4)], vec![]);
        assert_eq!(a.intersection_size(&b), 2);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        let empty = KeywordCluster::new(2, IntervalId(0), [], vec![]);
        assert_eq!(empty.jaccard(&empty), 0.0);
    }

    #[test]
    fn total_edge_weight_sums_rho() {
        let clusters = ClusterExtractor::default()
            .extract(&figure3(), IntervalId(0))
            .unwrap();
        let triangle = clusters
            .iter()
            .find(|c| c.keywords == vec![kw(1), kw(2), kw(3)])
            .unwrap();
        assert!((triangle.total_edge_weight() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn render_uses_vocabulary() {
        let mut vocab = Vocabulary::new();
        let apple = vocab.intern("appl");
        let iphone = vocab.intern("iphon");
        let cluster = KeywordCluster::new(0, IntervalId(0), [iphone, apple], vec![]);
        assert_eq!(cluster.render(&vocab), "appl, iphon");
    }

    #[test]
    fn empty_graph_yields_no_clusters() {
        let clusters = ClusterExtractor::default()
            .extract(&pruned(&[]), IntervalId(0))
            .unwrap();
        assert!(clusters.is_empty());
    }
}

//! Connected components of the pruned keyword graph.
//!
//! The paper's qualitative evaluation (Section 5.3) reports "around 1100-1500
//! connected components (clusters)" per day, so in addition to biconnected
//! components the extractor can also report plain connected components — the
//! biconnected components "plus all trees connecting those components"
//! collapse into their connected component.

use crate::csr::{CsrGraph, NodeIndex};

/// Compute the connected components of `graph`; each component is a sorted
/// list of dense node indices.
pub fn connected_components(graph: &CsrGraph) -> Vec<Vec<NodeIndex>> {
    let n = graph.num_nodes();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    let mut queue: Vec<NodeIndex> = Vec::new();
    for start in 0..n as NodeIndex {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.clear();
        queue.push(start);
        let mut component = vec![start];
        while let Some(u) = queue.pop() {
            for (w, _) in graph.neighbors(u) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    component.push(w);
                    queue.push(w);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Assign a component id to every node; ids are dense and assigned in
/// discovery order.
pub fn component_labels(graph: &CsrGraph) -> Vec<u32> {
    let components = connected_components(graph);
    let mut labels = vec![0u32; graph.num_nodes()];
    for (id, component) in components.iter().enumerate() {
        for &node in component {
            labels[node as usize] = id as u32;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_corpus::vocabulary::KeywordId;

    fn graph_from(edges: &[(u32, u32)]) -> CsrGraph {
        CsrGraph::from_weighted_edges(
            edges
                .iter()
                .map(|&(u, v)| (KeywordId(u), KeywordId(v), 1.0)),
        )
    }

    #[test]
    fn single_component() {
        let graph = graph_from(&[(1, 2), (2, 3), (3, 1)]);
        let components = connected_components(&graph);
        assert_eq!(components.len(), 1);
        assert_eq!(components[0].len(), 3);
    }

    #[test]
    fn multiple_components() {
        let graph = graph_from(&[(1, 2), (3, 4), (4, 5)]);
        let components = connected_components(&graph);
        assert_eq!(components.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = components.iter().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let graph = graph_from(&[]);
        assert!(connected_components(&graph).is_empty());
    }

    #[test]
    fn labels_are_consistent_with_components() {
        let graph = graph_from(&[(1, 2), (3, 4)]);
        let labels = component_labels(&graph);
        let n1 = graph.node_of(KeywordId(1)).unwrap() as usize;
        let n2 = graph.node_of(KeywordId(2)).unwrap() as usize;
        let n3 = graph.node_of(KeywordId(3)).unwrap() as usize;
        let n4 = graph.node_of(KeywordId(4)).unwrap() as usize;
        assert_eq!(labels[n1], labels[n2]);
        assert_eq!(labels[n3], labels[n4]);
        assert_ne!(labels[n1], labels[n3]);
    }

    #[test]
    fn every_node_appears_exactly_once() {
        let graph = graph_from(&[(1, 2), (2, 3), (4, 5), (6, 7), (7, 8), (8, 6)]);
        let components = connected_components(&graph);
        let total: usize = components.iter().map(Vec::len).sum();
        assert_eq!(total, graph.num_nodes());
    }
}

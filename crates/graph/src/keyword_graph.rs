//! The keyword co-occurrence graph `G`.
//!
//! Vertices are keywords; an edge `(u, v)` with weight `A(u,v)` exists when
//! at least one document of the interval contains both keywords. The graph
//! also carries the per-keyword document counts `A(u)` and the interval's
//! document count `n`, which the χ²/ρ statistics need.

use std::collections::HashMap;

use bsc_corpus::pairs::PairCounts;
use bsc_corpus::vocabulary::KeywordId;

/// An edge of the keyword graph, with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeywordEdge {
    /// First endpoint (smaller id).
    pub u: KeywordId,
    /// Second endpoint (larger id).
    pub v: KeywordId,
    /// `A(u,v)`: number of documents containing both keywords.
    pub count: u64,
}

/// The keyword graph `G` for one temporal interval.
#[derive(Debug, Clone, Default)]
pub struct KeywordGraph {
    num_documents: u64,
    keyword_counts: HashMap<KeywordId, u64>,
    edges: Vec<KeywordEdge>,
}

impl KeywordGraph {
    /// `n`: the number of documents of the interval.
    pub fn num_documents(&self) -> u64 {
        self.num_documents
    }

    /// Number of distinct keywords (vertices).
    pub fn num_keywords(&self) -> usize {
        self.keyword_counts.len()
    }

    /// Number of co-occurrence edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `A(u)`: number of documents containing keyword `u`.
    pub fn keyword_count(&self, u: KeywordId) -> u64 {
        self.keyword_counts.get(&u).copied().unwrap_or(0)
    }

    /// The edges of the graph (unordered).
    pub fn edges(&self) -> &[KeywordEdge] {
        &self.edges
    }

    /// Iterate over `(u, A(u))`, in ascending keyword order. Sorting here
    /// keeps every consumer of the keyword set deterministic without each
    /// of them having to re-sort.
    pub fn keywords(&self) -> impl Iterator<Item = (KeywordId, u64)> + '_ {
        let mut pairs: Vec<(KeywordId, u64)> =
            self.keyword_counts.iter().map(|(&k, &c)| (k, c)).collect();
        pairs.sort_unstable();
        pairs.into_iter()
    }
}

/// Builder for [`KeywordGraph`].
#[derive(Debug, Clone, Default)]
pub struct KeywordGraphBuilder {
    graph: KeywordGraph,
}

impl KeywordGraphBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the interval document count `n`.
    pub fn num_documents(mut self, n: u64) -> Self {
        self.graph.num_documents = n;
        self
    }

    /// Record the per-keyword document count `A(u)`.
    pub fn keyword(mut self, u: KeywordId, count: u64) -> Self {
        self.graph.keyword_counts.insert(u, count);
        self
    }

    /// Add a co-occurrence edge with count `A(u,v)`. Endpoints are normalized
    /// so that the stored edge has `u < v`; self loops are ignored.
    pub fn edge(mut self, u: KeywordId, v: KeywordId, count: u64) -> Self {
        if u == v {
            return self;
        }
        let (u, v) = if u < v { (u, v) } else { (v, u) };
        self.graph.edges.push(KeywordEdge { u, v, count });
        self
    }

    /// Finish building.
    pub fn build(self) -> KeywordGraph {
        self.graph
    }

    /// Build a keyword graph directly from aggregated pair counts.
    ///
    /// Keywords and pairs are sorted by id before insertion: the pair counts
    /// live in hash maps whose iteration order varies between instances, and
    /// that order would otherwise leak — via the edge list, the CSR node
    /// interning and the biconnected-component enumeration — all the way
    /// into the *cluster indices* of the cluster graph, making two runs on
    /// identical input produce differently-numbered (though isomorphic)
    /// clusters. Sorting here makes the whole pipeline deterministic.
    pub fn from_pair_counts(counts: &PairCounts) -> KeywordGraph {
        let mut builder = KeywordGraphBuilder::new().num_documents(counts.num_documents());
        let mut keywords: Vec<(KeywordId, u64)> = counts.iter_keywords().collect();
        keywords.sort_unstable_by_key(|&(k, _)| k);
        for (keyword, count) in keywords {
            builder = builder.keyword(keyword, count);
        }
        let mut pairs: Vec<(KeywordId, KeywordId, u64)> = counts.iter_pairs().collect();
        pairs.sort_unstable_by_key(|&(u, v, _)| (u, v));
        for (u, v, count) in pairs {
            builder = builder.edge(u, v, count);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_corpus::document::{Document, DocumentId};
    use bsc_corpus::pairs::PairCounter;
    use bsc_corpus::timeline::IntervalId;

    fn kw(id: u32) -> KeywordId {
        KeywordId(id)
    }

    #[test]
    fn builder_normalizes_edges_and_skips_self_loops() {
        let graph = KeywordGraphBuilder::new()
            .num_documents(10)
            .keyword(kw(1), 4)
            .keyword(kw(2), 5)
            .edge(kw(2), kw(1), 3)
            .edge(kw(1), kw(1), 9)
            .build();
        assert_eq!(graph.num_edges(), 1);
        let edge = graph.edges()[0];
        assert_eq!((edge.u, edge.v, edge.count), (kw(1), kw(2), 3));
        assert_eq!(graph.num_keywords(), 2);
        assert_eq!(graph.keyword_count(kw(2)), 5);
        assert_eq!(graph.keyword_count(kw(9)), 0);
        assert_eq!(graph.num_documents(), 10);
    }

    #[test]
    fn from_pair_counts_matches_manual_construction() {
        let docs = vec![
            Document::new(DocumentId(1), IntervalId(0), [kw(1), kw(2), kw(3)]),
            Document::new(DocumentId(2), IntervalId(0), [kw(1), kw(2)]),
            Document::new(DocumentId(3), IntervalId(0), [kw(3)]),
        ];
        let counts = PairCounter::in_memory().count(&docs).unwrap();
        let graph = KeywordGraphBuilder::from_pair_counts(&counts);
        assert_eq!(graph.num_documents(), 3);
        assert_eq!(graph.num_keywords(), 3);
        assert_eq!(graph.num_edges(), 3);
        let edge_12 = graph
            .edges()
            .iter()
            .find(|e| e.u == kw(1) && e.v == kw(2))
            .unwrap();
        assert_eq!(edge_12.count, 2);
    }
}

//! Articulation points and biconnected components (Algorithm 1).
//!
//! The paper extracts keyword clusters as the biconnected components of the
//! pruned graph `G′`, found with the classic Hopcroft–Tarjan DFS: every node
//! gets a visitation number `un[u]` and a `low[u]` value (the smallest
//! visitation number reachable from the subtree of `u` through a back edge);
//! a non-root node `u` is an articulation point iff it has a child `w` with
//! `low[w] ≥ un[u]`, and the edges accumulated on a stack since `w` was
//! entered form one biconnected component.
//!
//! This implementation is **iterative** (the recursion of Algorithm 1 would
//! overflow the call stack on the multi-million-edge graphs of Table 1) and
//! keeps the edge stack in a [`bsc_storage::PagedStack`], which spills to
//! disk when it outgrows a configurable memory budget — mirroring the
//! paper's observation that the in-memory state is "a stack with well
//! defined access patterns" that "can be efficiently paged to secondary
//! storage".

use bsc_storage::paged_stack::PagedStack;
use bsc_storage::Result as StorageResult;

use crate::csr::{CsrGraph, EdgeIndex, NodeIndex};

/// Configuration of the biconnected-component computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct BiconnectedComponents {
    /// Maximum number of edge-stack entries kept in memory before spilling to
    /// disk. `None` keeps everything in memory.
    pub max_edges_in_memory: Option<usize>,
}

/// Result of the articulation-point / biconnected-component computation.
#[derive(Debug, Clone, Default)]
pub struct BiconnectedResult {
    /// Dense node indices that are articulation points.
    pub articulation_points: Vec<NodeIndex>,
    /// Each biconnected component as a list of edge ids.
    pub components: Vec<Vec<EdgeIndex>>,
}

impl BiconnectedResult {
    /// The vertex set of component `i` (sorted, deduplicated).
    pub fn component_vertices(&self, graph: &CsrGraph, i: usize) -> Vec<NodeIndex> {
        let mut v: Vec<NodeIndex> = self.components[i]
            .iter()
            .flat_map(|&e| {
                let (a, b, _) = graph.edge(e);
                [a, b]
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

struct Frame {
    node: NodeIndex,
    parent: NodeIndex,
    /// Edge id of the tree edge from `parent` to `node` (u32::MAX for roots).
    parent_edge: EdgeIndex,
    /// Cursor into the adjacency range of `node`.
    cursor: usize,
    /// End of the adjacency range of `node`.
    end: usize,
}

const NONE: u32 = u32::MAX;

impl BiconnectedComponents {
    /// Use at most `max_edges` in-memory edge-stack entries (the rest spills
    /// to disk).
    pub fn with_memory_limit(max_edges: usize) -> Self {
        BiconnectedComponents {
            max_edges_in_memory: Some(max_edges),
        }
    }

    /// Run the computation over a CSR graph.
    pub fn run(&self, graph: &CsrGraph) -> StorageResult<BiconnectedResult> {
        let n = graph.num_nodes();
        let mut disc = vec![0u32; n]; // 0 = unvisited; actual times start at 1
        let mut low = vec![0u32; n];
        let mut is_articulation = vec![false; n];
        let mut time = 0u32;
        let mut components: Vec<Vec<EdgeIndex>> = Vec::new();
        let mut edge_stack: PagedStack<EdgeIndex> = match self.max_edges_in_memory {
            Some(limit) => PagedStack::new(limit)?,
            None => PagedStack::unbounded(),
        };

        // Adjacency ranges are recovered through the iterator API; we only
        // need a cursor per frame, so materialize each node's neighbour list
        // lazily into a shared scratch pad indexed by (cursor, end).
        let adjacency: Vec<(NodeIndex, EdgeIndex)> = graph
            .node_indices()
            .flat_map(|u| graph.neighbors(u).collect::<Vec<_>>())
            .collect();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for u in 0..n as NodeIndex {
            offsets.push(offsets[u as usize] + graph.degree(u));
        }

        for root in 0..n as NodeIndex {
            if disc[root as usize] != 0 {
                continue;
            }
            time += 1;
            disc[root as usize] = time;
            low[root as usize] = time;
            let mut root_children = 0usize;
            let mut stack: Vec<Frame> = vec![Frame {
                node: root,
                parent: NONE,
                parent_edge: NONE,
                cursor: offsets[root as usize],
                end: offsets[root as usize + 1],
            }];

            while let Some(frame) = stack.last_mut() {
                if frame.cursor < frame.end {
                    let (w, eid) = adjacency[frame.cursor];
                    frame.cursor += 1;
                    let u = frame.node;
                    if disc[w as usize] == 0 {
                        // Tree edge.
                        edge_stack.push(eid)?;
                        time += 1;
                        disc[w as usize] = time;
                        low[w as usize] = time;
                        if u == root {
                            root_children += 1;
                        }
                        stack.push(Frame {
                            node: w,
                            parent: u,
                            parent_edge: eid,
                            cursor: offsets[w as usize],
                            end: offsets[w as usize + 1],
                        });
                    } else if w != frame.parent && disc[w as usize] < disc[u as usize] {
                        // Back edge to an ancestor.
                        edge_stack.push(eid)?;
                        if disc[w as usize] < low[u as usize] {
                            low[u as usize] = disc[w as usize];
                        }
                    }
                } else {
                    // Node finished: propagate low to the parent and emit a
                    // component if the parent separates this subtree.
                    let Some(finished) = stack.pop() else { break };
                    if let Some(parent_frame) = stack.last_mut() {
                        let p = parent_frame.node;
                        let u = finished.node;
                        if low[u as usize] < low[p as usize] {
                            low[p as usize] = low[u as usize];
                        }
                        if low[u as usize] >= disc[p as usize] {
                            // p is an articulation point (for non-roots; the
                            // root is handled by the child count below), and
                            // the edges pushed since the tree edge (p, u) form
                            // one biconnected component.
                            if p != root {
                                is_articulation[p as usize] = true;
                            }
                            let mut component = Vec::new();
                            while let Some(edge) = edge_stack.pop()? {
                                component.push(edge);
                                if edge == finished.parent_edge {
                                    break;
                                }
                            }
                            if !component.is_empty() {
                                components.push(component);
                            }
                        }
                    }
                }
            }

            if root_children >= 2 {
                is_articulation[root as usize] = true;
            }
        }

        let articulation_points = (0..n as NodeIndex)
            .filter(|&u| is_articulation[u as usize])
            .collect();
        Ok(BiconnectedResult {
            articulation_points,
            components,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_corpus::vocabulary::KeywordId;
    use bsc_util::DetRng;
    use std::collections::HashSet;

    fn kw(id: u32) -> KeywordId {
        KeywordId(id)
    }

    fn graph_from(edges: &[(u32, u32)]) -> CsrGraph {
        CsrGraph::from_weighted_edges(edges.iter().map(|&(u, v)| (kw(u), kw(v), 1.0)))
    }

    fn keyword_sets(graph: &CsrGraph, result: &BiconnectedResult) -> Vec<Vec<u32>> {
        let mut sets: Vec<Vec<u32>> = result
            .components
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut v: Vec<u32> = result
                    .component_vertices(graph, i)
                    .into_iter()
                    .map(|n| graph.keyword(n).0)
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        sets.sort();
        sets
    }

    fn articulation_keywords(graph: &CsrGraph, result: &BiconnectedResult) -> Vec<u32> {
        let mut v: Vec<u32> = result
            .articulation_points
            .iter()
            .map(|&n| graph.keyword(n).0)
            .collect();
        v.sort_unstable();
        v
    }

    /// The paper's Figure 3 example: vertices a..g (1..7), with biconnected
    /// components {a,b,c}, {b,d}, {d,e,f}, {d,g} and articulation points b, d.
    /// Edges: a-b, b-c, c-a (triangle), b-d (bridge), d-e, e-f, f-d
    /// (triangle), d-g (bridge).
    fn figure3() -> CsrGraph {
        graph_from(&[
            (1, 2),
            (2, 3),
            (3, 1),
            (2, 4),
            (4, 5),
            (5, 6),
            (6, 4),
            (4, 7),
        ])
    }

    #[test]
    fn figure3_components_and_articulation_points() {
        let graph = figure3();
        let result = BiconnectedComponents::default().run(&graph).unwrap();
        let sets = keyword_sets(&graph, &result);
        assert_eq!(
            sets,
            vec![vec![1, 2, 3], vec![2, 4], vec![4, 5, 6], vec![4, 7]]
        );
        assert_eq!(articulation_keywords(&graph, &result), vec![2, 4]);
    }

    #[test]
    fn single_edge_is_one_component_no_articulation() {
        let graph = graph_from(&[(1, 2)]);
        let result = BiconnectedComponents::default().run(&graph).unwrap();
        assert_eq!(keyword_sets(&graph, &result), vec![vec![1, 2]]);
        assert!(result.articulation_points.is_empty());
    }

    #[test]
    fn cycle_is_a_single_component() {
        let graph = graph_from(&[(1, 2), (2, 3), (3, 4), (4, 1)]);
        let result = BiconnectedComponents::default().run(&graph).unwrap();
        assert_eq!(keyword_sets(&graph, &result), vec![vec![1, 2, 3, 4]]);
        assert!(result.articulation_points.is_empty());
    }

    #[test]
    fn path_produces_one_component_per_edge() {
        let graph = graph_from(&[(1, 2), (2, 3), (3, 4)]);
        let result = BiconnectedComponents::default().run(&graph).unwrap();
        assert_eq!(
            keyword_sets(&graph, &result),
            vec![vec![1, 2], vec![2, 3], vec![3, 4]]
        );
        assert_eq!(articulation_keywords(&graph, &result), vec![2, 3]);
    }

    #[test]
    fn star_center_is_articulation_point() {
        let graph = graph_from(&[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let result = BiconnectedComponents::default().run(&graph).unwrap();
        assert_eq!(result.components.len(), 4);
        assert_eq!(articulation_keywords(&graph, &result), vec![0]);
    }

    #[test]
    fn disconnected_graph_handled_per_component() {
        let graph = graph_from(&[(1, 2), (2, 3), (3, 1), (10, 11), (11, 12)]);
        let result = BiconnectedComponents::default().run(&graph).unwrap();
        let sets = keyword_sets(&graph, &result);
        assert_eq!(sets, vec![vec![1, 2, 3], vec![10, 11], vec![11, 12]]);
        assert_eq!(articulation_keywords(&graph, &result), vec![11]);
    }

    #[test]
    fn empty_graph() {
        let graph = graph_from(&[]);
        let result = BiconnectedComponents::default().run(&graph).unwrap();
        assert!(result.components.is_empty());
        assert!(result.articulation_points.is_empty());
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let graph = graph_from(&[(1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (5, 3)]);
        let result = BiconnectedComponents::default().run(&graph).unwrap();
        assert_eq!(
            keyword_sets(&graph, &result),
            vec![vec![1, 2, 3], vec![3, 4, 5]]
        );
        assert_eq!(articulation_keywords(&graph, &result), vec![3]);
    }

    #[test]
    fn spilled_edge_stack_matches_in_memory() {
        let edges: Vec<(u32, u32)> = (0..200)
            .flat_map(|i| vec![(i, i + 1), (i, i + 2)])
            .collect();
        let graph = graph_from(&edges);
        let in_memory = BiconnectedComponents::default().run(&graph).unwrap();
        let spilled = BiconnectedComponents::with_memory_limit(8)
            .run(&graph)
            .unwrap();
        assert_eq!(
            keyword_sets(&graph, &in_memory),
            keyword_sets(&graph, &spilled)
        );
        assert_eq!(
            articulation_keywords(&graph, &in_memory),
            articulation_keywords(&graph, &spilled)
        );
    }

    #[test]
    fn every_edge_in_exactly_one_component() {
        let graph = figure3();
        let result = BiconnectedComponents::default().run(&graph).unwrap();
        let mut seen = HashSet::new();
        let mut total = 0usize;
        for component in &result.components {
            for &edge in component {
                assert!(seen.insert(edge), "edge {edge} appears twice");
                total += 1;
            }
        }
        assert_eq!(total, graph.num_edges());
    }

    /// Naive articulation-point oracle: a vertex is an articulation point iff
    /// removing it increases the number of connected components among the
    /// remaining vertices of its original component.
    fn naive_articulation_points(edges: &[(u32, u32)]) -> Vec<u32> {
        use std::collections::{HashMap, HashSet};
        let mut adj: HashMap<u32, HashSet<u32>> = HashMap::new();
        let mut vertices: HashSet<u32> = HashSet::new();
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            adj.entry(u).or_default().insert(v);
            adj.entry(v).or_default().insert(u);
            vertices.insert(u);
            vertices.insert(v);
        }
        let count_components = |skip: Option<u32>| -> usize {
            let mut visited: HashSet<u32> = HashSet::new();
            let mut components = 0;
            for &start in &vertices {
                if Some(start) == skip || visited.contains(&start) {
                    continue;
                }
                components += 1;
                let mut queue = vec![start];
                visited.insert(start);
                while let Some(u) = queue.pop() {
                    if let Some(neighbours) = adj.get(&u) {
                        for &w in neighbours {
                            if Some(w) == skip || visited.contains(&w) {
                                continue;
                            }
                            visited.insert(w);
                            queue.push(w);
                        }
                    }
                }
            }
            components
        };
        let base = count_components(None);
        let mut result: Vec<u32> = vertices
            .iter()
            .copied()
            .filter(|&v| count_components(Some(v)) > base)
            .collect();
        result.sort_unstable();
        result
    }

    /// Draw a random simple undirected graph as a deduplicated edge list
    /// over `universe` vertices.
    fn random_edges(rng: &mut DetRng, universe: u32, max_edges: usize) -> Vec<(u32, u32)> {
        let n = 1 + rng.index(max_edges);
        (0..n)
            .map(|_| {
                (
                    rng.below(universe as u64) as u32,
                    rng.below(universe as u64) as u32,
                )
            })
            .filter(|(u, v)| u != v)
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect::<HashSet<_>>()
            .into_iter()
            .collect()
    }

    #[test]
    fn randomized_articulation_points_match_naive_oracle() {
        let mut rng = DetRng::seed_from_u64(600);
        for _ in 0..64 {
            let edges = random_edges(&mut rng, 12, 40);
            if edges.is_empty() {
                continue;
            }
            let graph = graph_from(&edges);
            let result = BiconnectedComponents::default().run(&graph).unwrap();
            assert_eq!(
                articulation_keywords(&graph, &result),
                naive_articulation_points(&edges)
            );
        }
    }

    #[test]
    fn randomized_components_partition_edges() {
        let mut rng = DetRng::seed_from_u64(601);
        for _ in 0..64 {
            let edges = random_edges(&mut rng, 15, 60);
            if edges.is_empty() {
                continue;
            }
            let graph = graph_from(&edges);
            let result = BiconnectedComponents::default().run(&graph).unwrap();
            let mut seen = HashSet::new();
            for component in &result.components {
                for &edge in component {
                    assert!(seen.insert(edge));
                }
            }
            assert_eq!(seen.len(), graph.num_edges());
        }
    }
}

//! Contiguous balanced partitioning of weighted interval sequences.
//!
//! The sharded stable-cluster solver in `bsc-core` decomposes a temporal
//! cluster graph into per-shard subgraphs: each shard owns a contiguous run
//! of path start intervals, and the per-shard work is roughly proportional to
//! the edges reachable from those starts. This module provides the
//! partitioning primitive: split a sequence of item weights into `parts`
//! contiguous ranges whose weight sums are as balanced as a single greedy
//! left-to-right pass can make them, deterministically.
//!
//! The same partition-then-merge shape appears in disk-based keyword search
//! (EMBANKS): slice the graph so each slice fits the memory budget, solve the
//! slices independently, merge ordered results. Keeping the ranges
//! *contiguous* is what makes the cluster-graph slices cheap to extract —
//! a run of intervals is a CSR row range, not a scattered node set.

use std::ops::Range;

/// A contiguous partition of `0..len` into weighted ranges.
///
/// Produced by [`balanced_ranges`]; every index belongs to exactly one range,
/// ranges are in ascending order, and no range is empty (consequently there
/// are `min(parts, len)` ranges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalPartition {
    ranges: Vec<Range<usize>>,
}

impl IntervalPartition {
    /// The ranges, in ascending index order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of ranges (shards).
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the partitioned sequence was empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The range that owns `index`, if the index was partitioned.
    pub fn owner_of(&self, index: usize) -> Option<usize> {
        self.ranges.iter().position(|r| r.contains(&index))
    }

    /// Iterate over the ranges.
    pub fn iter(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.ranges.iter().cloned()
    }
}

/// Split `weights` into at most `parts` contiguous non-empty ranges with
/// near-equal weight sums.
///
/// A single deterministic greedy pass: each range is closed once its running
/// sum reaches the remaining average `remaining_weight / remaining_parts`,
/// while always leaving at least one item for every range still to be
/// formed. Zero-weight items are carried with their neighbours. The result
/// depends only on the inputs — no hashing, no randomness — so a sharded
/// solve partitions identically on every run and every machine.
pub fn balanced_ranges(weights: &[u64], parts: usize) -> IntervalPartition {
    let len = weights.len();
    if len == 0 || parts == 0 {
        return IntervalPartition { ranges: Vec::new() };
    }
    let parts = parts.min(len);
    let total: u64 = weights.iter().sum();
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut remaining_weight = total;
    for part in 0..parts {
        let parts_left = parts - part;
        if parts_left == 1 {
            ranges.push(start..len);
            break;
        }
        // Close the range at the first index where the running sum reaches
        // the remaining average, but leave enough items for the other parts.
        let target = remaining_weight.div_ceil(parts_left as u64);
        let max_end = len - (parts_left - 1);
        let mut end = start + 1;
        let mut sum = weights[start];
        while end < max_end && sum < target {
            sum += weights[end];
            end += 1;
        }
        ranges.push(start..end);
        remaining_weight = remaining_weight.saturating_sub(sum);
        start = end;
    }
    IntervalPartition { ranges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sums(weights: &[u64], partition: &IntervalPartition) -> Vec<u64> {
        partition.iter().map(|r| weights[r].iter().sum()).collect()
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let weights = [3, 1, 4, 1, 5, 9, 2, 6];
        for parts in 1..=10 {
            let partition = balanced_ranges(&weights, parts);
            assert_eq!(partition.len(), parts.min(weights.len()));
            let mut covered = Vec::new();
            for range in partition.iter() {
                assert!(!range.is_empty(), "parts={parts}: empty range");
                covered.extend(range);
            }
            assert_eq!(
                covered,
                (0..weights.len()).collect::<Vec<_>>(),
                "parts={parts}"
            );
            for i in 0..weights.len() {
                assert!(partition.owner_of(i).is_some());
            }
            assert_eq!(partition.owner_of(weights.len()), None);
        }
    }

    #[test]
    fn single_part_takes_everything() {
        let partition = balanced_ranges(&[1, 2, 3], 1);
        assert_eq!(partition.ranges(), std::slice::from_ref(&(0..3)));
    }

    #[test]
    fn empty_inputs() {
        assert!(balanced_ranges(&[], 4).is_empty());
        assert!(balanced_ranges(&[1, 2], 0).is_empty());
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let weights = [1u64; 12];
        let partition = balanced_ranges(&weights, 4);
        assert_eq!(sums(&weights, &partition), vec![3, 3, 3, 3]);
    }

    #[test]
    fn skewed_weights_stay_roughly_balanced() {
        let weights = [100, 1, 1, 1, 1, 1, 1, 95];
        let partition = balanced_ranges(&weights, 2);
        // The heavy head closes the first range as soon as the running sum
        // reaches the remaining average (ceil(201 / 2) = 101).
        assert_eq!(partition.ranges()[0], 0..2);
        assert_eq!(sums(&weights, &partition), vec![101, 100]);
    }

    #[test]
    fn zero_weights_do_not_produce_empty_ranges() {
        let weights = [0, 0, 0, 0];
        let partition = balanced_ranges(&weights, 3);
        assert_eq!(partition.len(), 3);
        assert!(partition.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn deterministic_across_calls() {
        let weights = [7, 2, 9, 4, 4, 4, 1, 1, 8, 3];
        let a = balanced_ranges(&weights, 3);
        let b = balanced_ranges(&weights, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn more_parts_than_items_degrades_to_singletons() {
        let weights = [5, 6];
        let partition = balanced_ranges(&weights, 8);
        assert_eq!(partition.ranges(), &[0..1, 1..2]);
    }
}

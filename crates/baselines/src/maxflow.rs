//! Maximum flow (Dinic's algorithm).
//!
//! The cut-clustering baseline of Flake et al. requires repeated
//! minimum-cut/maximum-flow computations. Dinic's algorithm — BFS level
//! graphs plus blocking flows found by DFS — is among the fastest practical
//! choices and still demonstrates the paper's point: flow-based clustering is
//! orders of magnitude more expensive than the articulation-point heuristic.

/// A capacitated directed flow network on dense vertex indices.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    /// Edge target per edge id.
    to: Vec<u32>,
    /// Residual capacity per edge id.
    capacity: Vec<f64>,
    /// Adjacency: for each vertex, the outgoing edge ids (including reverse
    /// edges).
    adjacency: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// Create a network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            capacity: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Add a directed edge `u -> v` with the given capacity (a reverse edge
    /// of capacity 0 is added automatically).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or the capacity is negative.
    pub fn add_edge(&mut self, u: u32, v: u32, capacity: f64) {
        assert!(capacity >= 0.0, "capacities must be non-negative");
        assert!(
            (u as usize) < self.adjacency.len(),
            "vertex {u} out of range"
        );
        assert!(
            (v as usize) < self.adjacency.len(),
            "vertex {v} out of range"
        );
        let id = self.to.len() as u32;
        self.to.push(v);
        self.capacity.push(capacity);
        self.adjacency[u as usize].push(id);
        self.to.push(u);
        self.capacity.push(0.0);
        self.adjacency[v as usize].push(id + 1);
    }

    /// Add an undirected edge (capacity in both directions).
    pub fn add_undirected_edge(&mut self, u: u32, v: u32, capacity: f64) {
        self.add_edge(u, v, capacity);
        self.add_edge(v, u, capacity);
    }

    /// Compute the maximum flow from `source` to `sink`, consuming residual
    /// capacities (call on a clone to preserve the network).
    pub fn max_flow(&mut self, source: u32, sink: u32) -> f64 {
        const EPS: f64 = 1e-12;
        let n = self.num_vertices();
        let mut total = 0.0;
        loop {
            // BFS to build the level graph.
            let mut level = vec![u32::MAX; n];
            level[source as usize] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            while let Some(u) = queue.pop_front() {
                for &edge in &self.adjacency[u as usize] {
                    let v = self.to[edge as usize];
                    if self.capacity[edge as usize] > EPS && level[v as usize] == u32::MAX {
                        level[v as usize] = level[u as usize] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[sink as usize] == u32::MAX {
                return total;
            }
            // DFS blocking flow with iteration pointers.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs_push(source, sink, f64::INFINITY, &level, &mut iter);
                if pushed <= EPS {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs_push(
        &mut self,
        u: u32,
        sink: u32,
        limit: f64,
        level: &[u32],
        iter: &mut [usize],
    ) -> f64 {
        const EPS: f64 = 1e-12;
        if u == sink {
            return limit;
        }
        while iter[u as usize] < self.adjacency[u as usize].len() {
            let edge = self.adjacency[u as usize][iter[u as usize]];
            let v = self.to[edge as usize];
            if self.capacity[edge as usize] > EPS && level[v as usize] == level[u as usize] + 1 {
                let pushed = self.dfs_push(
                    v,
                    sink,
                    limit.min(self.capacity[edge as usize]),
                    level,
                    iter,
                );
                if pushed > EPS {
                    self.capacity[edge as usize] -= pushed;
                    self.capacity[(edge ^ 1) as usize] += pushed;
                    return pushed;
                }
            }
            iter[u as usize] += 1;
        }
        0.0
    }

    /// After a max-flow computation, the set of vertices reachable from
    /// `source` in the residual network (the source side of a minimum cut).
    pub fn min_cut_source_side(&self, source: u32) -> Vec<u32> {
        const EPS: f64 = 1e-12;
        let n = self.num_vertices();
        let mut visited = vec![false; n];
        visited[source as usize] = true;
        let mut queue = vec![source];
        while let Some(u) = queue.pop() {
            for &edge in &self.adjacency[u as usize] {
                let v = self.to[edge as usize];
                if self.capacity[edge as usize] > EPS && !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push(v);
                }
            }
        }
        (0..n as u32).filter(|&v| visited[v as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_series_network() {
        // s -> a -> t with capacities 3 and 2: max flow 2.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 3.0);
        net.add_edge(1, 2, 2.0);
        let flow = net.max_flow(0, 2);
        assert!((flow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_add_up() {
        // Two disjoint s->t paths of capacity 1 and 2.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(2, 3, 2.0);
        assert!((net.max_flow(0, 3) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS-style example with a known max flow of 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        assert!((net.max_flow(0, 5) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_separates_source_from_sink() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0);
        net.add_edge(1, 2, 1.0); // bottleneck
        net.add_edge(2, 3, 5.0);
        let flow = net.max_flow(0, 3);
        assert!((flow - 1.0).abs() < 1e-9);
        let source_side = net.min_cut_source_side(0);
        assert!(source_side.contains(&0));
        assert!(source_side.contains(&1));
        assert!(!source_side.contains(&2));
        assert!(!source_side.contains(&3));
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4.0);
        assert_eq!(net.max_flow(0, 2), 0.0);
    }

    #[test]
    fn undirected_edges_carry_flow_both_ways() {
        let mut net = FlowNetwork::new(3);
        net.add_undirected_edge(0, 1, 2.0);
        net.add_undirected_edge(1, 2, 2.0);
        assert!((net.max_flow(2, 0) - 2.0).abs() < 1e-9);
    }
}

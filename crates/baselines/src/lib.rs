//! # bsc-baselines
//!
//! Comparator algorithms and exact oracles used to evaluate blogstable.
//!
//! The paper's related-work section positions the articulation-point
//! clustering heuristic against three alternative graph-clustering
//! formulations, all of which are implemented here so the comparison can be
//! reproduced:
//!
//! * **Cut clustering** (Flake, Tarjan, Tsioutsiouliklis) — clusters from
//!   minimum cuts against an artificial sink, built on a [`maxflow`]
//!   implementation (Dinic). The paper reports that this approach "required
//!   six hours to conduct a graph cut on a graph with a few thousand edges
//!   and vertices"; the `baselines` bench reproduces the ordering (orders of
//!   magnitude slower than biconnected components).
//! * **Correlation clustering** (Bansal, Blum, Chawla) via the CC-Pivot
//!   approximation on ±-labelled graphs ([`correlation_clustering`]).
//! * **Multilevel k-way partitioning** (Karypis, Kumar) approximated by
//!   recursive bisection with Kernighan–Lin style refinement ([`kway`]).
//!
//! [`exhaustive`] provides a brute-force top-k path enumerator over cluster
//! graphs: the ground-truth oracle against which the BFS/DFS/TA solvers are
//! validated in the integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation_clustering;
pub mod cut_clustering;
pub mod exhaustive;
pub mod kway;
pub mod maxflow;

pub use correlation_clustering::{cc_pivot, SignedGraph};
pub use cut_clustering::{cut_clustering, CutClusteringParams};
pub use exhaustive::{exhaustive_normalized_top_k, exhaustive_top_k, ExhaustiveSolver};
pub use kway::{kway_partition, KwayParams};
pub use maxflow::FlowNetwork;

//! Correlation clustering via the CC-Pivot approximation.
//!
//! Correlation clustering (Bansal, Blum, Chawla) partitions a graph whose
//! edges are labelled `+` (similar) or `−` (dissimilar) so as to maximize
//! agreements, without fixing the number of clusters. The paper's
//! related-work section notes the known approximation algorithms are "very
//! interesting theoretically, but far from practical" and require binary
//! labels. We implement the classic CC-Pivot algorithm (pick a random pivot,
//! cluster it with its `+` neighbours, recurse), which is the standard
//! practical approximation, and use it as a quality/throughput comparator.

use bsc_util::DetRng;

use bsc_corpus::vocabulary::KeywordId;
use bsc_graph::prune::PrunedGraph;

/// A ±-labelled undirected graph over keyword vertices.
#[derive(Debug, Clone, Default)]
pub struct SignedGraph {
    vertices: Vec<KeywordId>,
    /// Positive edges, as index pairs into `vertices`.
    positive: Vec<(u32, u32)>,
}

impl SignedGraph {
    /// Build from explicit vertices and positive keyword pairs (every absent
    /// pair is implicitly negative, as in the correlation-clustering model).
    pub fn new(vertices: Vec<KeywordId>, positive_pairs: &[(KeywordId, KeywordId)]) -> Self {
        let index_of: std::collections::HashMap<KeywordId, u32> = vertices
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        let positive = positive_pairs
            .iter()
            .filter_map(|&(a, b)| {
                let ia = index_of.get(&a)?;
                let ib = index_of.get(&b)?;
                if ia == ib {
                    None
                } else {
                    Some((*ia.min(ib), *ia.max(ib)))
                }
            })
            .collect();
        SignedGraph { vertices, positive }
    }

    /// Derive the signed graph the paper's setting implies: vertices are the
    /// keywords that survive pruning and the `+` edges are exactly the
    /// surviving (strongly correlated) pairs.
    pub fn from_pruned(graph: &PrunedGraph) -> Self {
        let vertices = graph.vertices();
        let pairs: Vec<(KeywordId, KeywordId)> = graph.edges().iter().map(|e| (e.u, e.v)).collect();
        SignedGraph::new(vertices, &pairs)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of positive edges.
    pub fn num_positive_edges(&self) -> usize {
        self.positive.len()
    }

    fn positive_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.vertices.len()];
        for &(a, b) in &self.positive {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        adj
    }

    /// The number of disagreements of a clustering: positive edges across
    /// clusters plus implicit negative edges within clusters.
    pub fn disagreements(&self, clusters: &[Vec<KeywordId>]) -> u64 {
        let mut label = std::collections::HashMap::new();
        for (id, cluster) in clusters.iter().enumerate() {
            for k in cluster {
                label.insert(*k, id);
            }
        }
        let positive_set: std::collections::HashSet<(u32, u32)> =
            self.positive.iter().copied().collect();
        let mut disagreements = 0u64;
        // Positive edges across clusters.
        for &(a, b) in &self.positive {
            let ka = self.vertices[a as usize];
            let kb = self.vertices[b as usize];
            if label.get(&ka) != label.get(&kb) {
                disagreements += 1;
            }
        }
        // Negative (absent) edges within clusters.
        for cluster in clusters {
            for i in 0..cluster.len() {
                for j in (i + 1)..cluster.len() {
                    // bsc:allow(panic-in-lib) -- cluster members are drawn from self.vertices by construction
                    let a = self.vertices.iter().position(|&k| k == cluster[i]).unwrap() as u32;
                    // bsc:allow(panic-in-lib) -- cluster members are drawn from self.vertices by construction
                    let b = self.vertices.iter().position(|&k| k == cluster[j]).unwrap() as u32;
                    let key = (a.min(b), a.max(b));
                    if !positive_set.contains(&key) {
                        disagreements += 1;
                    }
                }
            }
        }
        disagreements
    }
}

/// The CC-Pivot algorithm: repeatedly pick a random unclustered pivot and
/// cluster it together with its unclustered positive neighbours. Expected
/// 3-approximation of the minimum number of disagreements.
pub fn cc_pivot(graph: &SignedGraph, seed: u64) -> Vec<Vec<KeywordId>> {
    let n = graph.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = DetRng::seed_from_u64(seed);
    rng.shuffle(&mut order);
    let adjacency = graph.positive_adjacency();
    let mut clustered = vec![false; n];
    let mut clusters = Vec::new();
    for pivot in order {
        if clustered[pivot as usize] {
            continue;
        }
        clustered[pivot as usize] = true;
        let mut cluster = vec![graph.vertices[pivot as usize]];
        for &neighbour in &adjacency[pivot as usize] {
            if !clustered[neighbour as usize] {
                clustered[neighbour as usize] = true;
                cluster.push(graph.vertices[neighbour as usize]);
            }
        }
        cluster.sort_unstable();
        clusters.push(cluster);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(id: u32) -> KeywordId {
        KeywordId(id)
    }

    fn vertices(n: u32) -> Vec<KeywordId> {
        (0..n).map(kw).collect()
    }

    #[test]
    fn two_cliques_are_recovered() {
        // Two positive cliques {0,1,2} and {3,4,5}, no positive edges across.
        let positive = vec![
            (kw(0), kw(1)),
            (kw(1), kw(2)),
            (kw(0), kw(2)),
            (kw(3), kw(4)),
            (kw(4), kw(5)),
            (kw(3), kw(5)),
        ];
        let graph = SignedGraph::new(vertices(6), &positive);
        let clusters = cc_pivot(&graph, 1);
        let mut sets: Vec<Vec<u32>> = clusters
            .iter()
            .map(|c| c.iter().map(|k| k.0).collect())
            .collect();
        sets.sort();
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(graph.disagreements(&clusters), 0);
    }

    #[test]
    fn every_vertex_clustered_exactly_once() {
        let positive = vec![(kw(0), kw(1)), (kw(2), kw(3)), (kw(1), kw(2))];
        let graph = SignedGraph::new(vertices(5), &positive);
        let clusters = cc_pivot(&graph, 7);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        let mut all: Vec<u32> = clusters.iter().flatten().map(|k| k.0).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn disagreement_counting() {
        let positive = vec![(kw(0), kw(1)), (kw(1), kw(2))];
        let graph = SignedGraph::new(vertices(3), &positive);
        // Perfect clustering of the path {0,1,2} together: one missing edge
        // (0,2) inside -> 1 disagreement.
        assert_eq!(graph.disagreements(&[vec![kw(0), kw(1), kw(2)]]), 1);
        // All singletons: both positive edges cut -> 2 disagreements.
        assert_eq!(
            graph.disagreements(&[vec![kw(0)], vec![kw(1)], vec![kw(2)]]),
            2
        );
    }

    #[test]
    fn isolated_vertices_become_singletons() {
        let graph = SignedGraph::new(vertices(3), &[]);
        let clusters = cc_pivot(&graph, 3);
        assert_eq!(clusters.len(), 3);
        assert!(clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let positive = vec![(kw(0), kw(1)), (kw(1), kw(2)), (kw(3), kw(4))];
        let graph = SignedGraph::new(vertices(5), &positive);
        assert_eq!(cc_pivot(&graph, 42), cc_pivot(&graph, 42));
    }
}

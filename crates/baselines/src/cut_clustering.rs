//! Cut clustering (Flake, Tarjan, Tsioutsiouliklis — "Graph Clustering and
//! Minimum Cut Trees").
//!
//! The method adds an artificial sink `t` connected to every vertex with
//! capacity α and clusters each vertex with the source side of its minimum
//! `v`–`t` cut. The paper's related-work section criticizes it on two counts
//! reproduced by the `baselines` bench: the sensitivity parameter α must be
//! chosen up front and strongly affects the result, and the repeated max-flow
//! computations are prohibitively slow on keyword graphs ("six hours ... on a
//! graph with a few thousand edges").

use std::collections::HashSet;

use bsc_corpus::vocabulary::KeywordId;
use bsc_graph::csr::CsrGraph;

use crate::maxflow::FlowNetwork;

/// Parameters of cut clustering.
#[derive(Debug, Clone, Copy)]
pub struct CutClusteringParams {
    /// The artificial-sink capacity α. Larger values produce smaller, denser
    /// clusters.
    pub alpha: f64,
}

impl Default for CutClusteringParams {
    fn default() -> Self {
        CutClusteringParams { alpha: 0.3 }
    }
}

/// Run cut clustering over a weighted undirected keyword graph. Returns the
/// clusters as sorted keyword-id lists (singleton clusters included).
pub fn cut_clustering(graph: &CsrGraph, params: CutClusteringParams) -> Vec<Vec<KeywordId>> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let sink = n as u32; // artificial sink index
    let mut assigned: Vec<bool> = vec![false; n];
    let mut clusters: Vec<Vec<KeywordId>> = Vec::new();

    for v in 0..n as u32 {
        if assigned[v as usize] {
            continue;
        }
        // Build the expanded network: original undirected edges plus the
        // artificial sink connected to every vertex with capacity alpha.
        let mut network = FlowNetwork::new(n + 1);
        for edge in 0..graph.num_edges() as u32 {
            let (a, b, w) = graph.edge(edge);
            network.add_undirected_edge(a, b, w);
        }
        for u in 0..n as u32 {
            network.add_edge(u, sink, params.alpha);
            network.add_edge(sink, u, params.alpha);
        }
        network.max_flow(v, sink);
        let source_side: HashSet<u32> = network
            .min_cut_source_side(v)
            .into_iter()
            .filter(|&u| u != sink)
            .collect();
        let mut cluster: Vec<KeywordId> = source_side
            .iter()
            .filter(|&&u| !assigned[u as usize])
            .map(|&u| graph.keyword(u))
            .collect();
        for &u in &source_side {
            assigned[u as usize] = true;
        }
        if cluster.is_empty() {
            cluster.push(graph.keyword(v));
            assigned[v as usize] = true;
        }
        cluster.sort_unstable();
        clusters.push(cluster);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(id: u32) -> KeywordId {
        KeywordId(id)
    }

    /// Two dense triangles joined by a single weak edge.
    fn two_communities() -> CsrGraph {
        CsrGraph::from_weighted_edges(vec![
            (kw(0), kw(1), 1.0),
            (kw(1), kw(2), 1.0),
            (kw(2), kw(0), 1.0),
            (kw(3), kw(4), 1.0),
            (kw(4), kw(5), 1.0),
            (kw(5), kw(3), 1.0),
            (kw(2), kw(3), 0.1),
        ])
    }

    #[test]
    fn separates_two_dense_communities() {
        let clusters = cut_clustering(&two_communities(), CutClusteringParams { alpha: 0.5 });
        let sets: Vec<Vec<u32>> = {
            let mut sets: Vec<Vec<u32>> = clusters
                .iter()
                .map(|c| c.iter().map(|k| k.0).collect())
                .collect();
            sets.sort();
            sets
        };
        assert!(
            sets.contains(&vec![0, 1, 2]) && sets.contains(&vec![3, 4, 5]),
            "unexpected clustering {sets:?}"
        );
    }

    #[test]
    fn every_vertex_assigned_exactly_once() {
        let graph = two_communities();
        let clusters = cut_clustering(&graph, CutClusteringParams::default());
        let mut seen = std::collections::HashSet::new();
        for cluster in &clusters {
            for k in cluster {
                assert!(seen.insert(*k), "keyword {k} in two clusters");
            }
        }
        assert_eq!(seen.len(), graph.num_nodes());
    }

    #[test]
    fn large_alpha_fragments_the_graph() {
        let graph = two_communities();
        let coarse = cut_clustering(&graph, CutClusteringParams { alpha: 0.2 });
        let fine = cut_clustering(&graph, CutClusteringParams { alpha: 10.0 });
        assert!(fine.len() >= coarse.len());
        // With alpha far above every edge weight, every vertex is isolated.
        assert_eq!(fine.len(), graph.num_nodes());
    }

    #[test]
    fn empty_graph() {
        let graph = CsrGraph::from_weighted_edges(Vec::<(KeywordId, KeywordId, f64)>::new());
        assert!(cut_clustering(&graph, CutClusteringParams::default()).is_empty());
    }
}

//! k-way graph partitioning by recursive bisection with Kernighan–Lin style
//! refinement.
//!
//! The paper's related-work section discusses multilevel k-way partitioning
//! (Karypis & Kumar) and points out its main mismatch with keyword
//! clustering: the number of partitions must be specified in advance and the
//! partitions are forced to be of roughly equal size. This module provides a
//! (single-level) recursive-bisection partitioner with boundary refinement so
//! that the comparison — partition quality versus natural biconnected
//! clusters, and the awkwardness of choosing `k` — can be reproduced.

use bsc_corpus::vocabulary::KeywordId;
use bsc_graph::csr::CsrGraph;

/// Parameters of the k-way partitioner.
#[derive(Debug, Clone, Copy)]
pub struct KwayParams {
    /// Number of partitions to produce.
    pub k: usize,
    /// Number of refinement sweeps per bisection.
    pub refinement_passes: usize,
}

impl Default for KwayParams {
    fn default() -> Self {
        KwayParams {
            k: 8,
            refinement_passes: 4,
        }
    }
}

/// Partition the graph into (at most) `k` parts of roughly equal size.
/// Returns the parts as sorted keyword lists; every vertex appears exactly
/// once.
pub fn kway_partition(graph: &CsrGraph, params: KwayParams) -> Vec<Vec<KeywordId>> {
    let n = graph.num_nodes();
    if n == 0 || params.k == 0 {
        return Vec::new();
    }
    let all: Vec<u32> = (0..n as u32).collect();
    let mut parts = vec![all];
    while parts.len() < params.k {
        // Split the largest part.
        let (largest_index, _) = parts
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            .expect("at least one part"); // bsc:allow(panic-in-lib) -- parts starts non-empty and only ever splits
        if parts[largest_index].len() <= 1 {
            break;
        }
        let part = parts.swap_remove(largest_index);
        let (a, b) = bisect(graph, &part, params.refinement_passes);
        parts.push(a);
        if !b.is_empty() {
            parts.push(b);
        }
    }
    parts
        .into_iter()
        .map(|part| {
            let mut keywords: Vec<KeywordId> = part.into_iter().map(|v| graph.keyword(v)).collect();
            keywords.sort_unstable();
            keywords
        })
        .collect()
}

/// The total weight of edges crossing between different parts.
pub fn edge_cut(graph: &CsrGraph, parts: &[Vec<KeywordId>]) -> f64 {
    let mut label = std::collections::HashMap::new();
    for (id, part) in parts.iter().enumerate() {
        for k in part {
            label.insert(*k, id);
        }
    }
    let mut cut = 0.0;
    for edge in 0..graph.num_edges() as u32 {
        let (a, b, w) = graph.edge(edge);
        if label.get(&graph.keyword(a)) != label.get(&graph.keyword(b)) {
            cut += w;
        }
    }
    cut
}

/// Bisect a vertex subset: greedy BFS growth to half the size, then boundary
/// refinement moving vertices with positive gain while keeping balance.
fn bisect(graph: &CsrGraph, part: &[u32], refinement_passes: usize) -> (Vec<u32>, Vec<u32>) {
    let member: std::collections::HashSet<u32> = part.iter().copied().collect();
    let target = part.len() / 2;
    if target == 0 {
        return (part.to_vec(), Vec::new());
    }
    // Grow side A from the highest-degree vertex with BFS.
    let seed = *part
        .iter()
        .max_by_key(|&&v| graph.degree(v))
        .expect("non-empty part"); // bsc:allow(panic-in-lib) -- caller splits only parts with len > 1
    let mut in_a: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(seed);
    in_a.insert(seed);
    while let Some(u) = queue.pop_front() {
        if in_a.len() >= target {
            break;
        }
        for (v, _) in graph.neighbors(u) {
            if in_a.len() >= target {
                break;
            }
            if member.contains(&v) && !in_a.contains(&v) {
                in_a.insert(v);
                queue.push_back(v);
            }
        }
    }
    // Top up with arbitrary members if BFS ran out (disconnected part).
    for &v in part {
        if in_a.len() >= target {
            break;
        }
        in_a.insert(v);
    }

    // Refinement: move boundary vertices with positive gain, keeping the
    // sides within one vertex of balance.
    for _ in 0..refinement_passes {
        let mut moved = false;
        for &v in part {
            let currently_a = in_a.contains(&v);
            let size_a = in_a.len();
            let size_b = part.len() - size_a;
            // Keep the balance within one vertex.
            if currently_a && size_a <= size_b {
                continue;
            }
            if !currently_a && size_b <= size_a {
                continue;
            }
            let mut internal = 0.0;
            let mut external = 0.0;
            for (w, edge) in graph.neighbors(v) {
                if !member.contains(&w) {
                    continue;
                }
                let (_, _, weight) = graph.edge(edge);
                if in_a.contains(&w) == currently_a {
                    internal += weight;
                } else {
                    external += weight;
                }
            }
            if external > internal {
                if currently_a {
                    in_a.remove(&v);
                } else {
                    in_a.insert(v);
                }
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    let side_a: Vec<u32> = part.iter().copied().filter(|v| in_a.contains(v)).collect();
    let side_b: Vec<u32> = part.iter().copied().filter(|v| !in_a.contains(v)).collect();
    (side_a, side_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(id: u32) -> KeywordId {
        KeywordId(id)
    }

    /// Two dense cliques of four vertices joined by one weak edge.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for group in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((kw(group + i), kw(group + j), 1.0));
                }
            }
        }
        edges.push((kw(3), kw(4), 0.05));
        CsrGraph::from_weighted_edges(edges)
    }

    #[test]
    fn bisection_finds_the_weak_link() {
        let graph = two_cliques();
        let parts = kway_partition(
            &graph,
            KwayParams {
                k: 2,
                refinement_passes: 4,
            },
        );
        assert_eq!(parts.len(), 2);
        let mut sets: Vec<Vec<u32>> = parts
            .iter()
            .map(|p| p.iter().map(|k| k.0).collect())
            .collect();
        sets.sort();
        assert_eq!(sets, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        assert!((edge_cut(&graph, &parts) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn every_vertex_in_exactly_one_part() {
        let graph = two_cliques();
        for k in [1, 2, 3, 4, 8] {
            let parts = kway_partition(
                &graph,
                KwayParams {
                    k,
                    refinement_passes: 2,
                },
            );
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, graph.num_nodes(), "k = {k}");
            let mut all: Vec<u32> = parts.iter().flatten().map(|kw| kw.0).collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), graph.num_nodes(), "k = {k}");
        }
    }

    #[test]
    fn requesting_more_parts_than_vertices_saturates() {
        let graph = CsrGraph::from_weighted_edges(vec![(kw(0), kw(1), 1.0), (kw(1), kw(2), 1.0)]);
        let parts = kway_partition(
            &graph,
            KwayParams {
                k: 10,
                refinement_passes: 1,
            },
        );
        assert!(parts.len() <= 3);
    }

    #[test]
    fn parts_are_roughly_balanced() {
        let graph = two_cliques();
        let parts = kway_partition(
            &graph,
            KwayParams {
                k: 2,
                refinement_passes: 4,
            },
        );
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 2);
    }

    #[test]
    fn empty_and_zero_k() {
        let graph = CsrGraph::from_weighted_edges(Vec::<(KeywordId, KeywordId, f64)>::new());
        assert!(kway_partition(&graph, KwayParams::default()).is_empty());
        let graph = two_cliques();
        assert!(kway_partition(
            &graph,
            KwayParams {
                k: 0,
                refinement_passes: 1
            }
        )
        .is_empty());
    }
}

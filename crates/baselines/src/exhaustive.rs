//! Exhaustive top-k path enumeration — the ground-truth oracle.
//!
//! The BFS, DFS and TA solvers of `bsc-core` all claim to return the exact
//! top-k paths (Claims 1 and 2 of the paper). This module enumerates *every*
//! path of a cluster graph by brute force and selects the top-k directly, so
//! the integration tests can verify those claims on randomly generated
//! graphs. Complexity is exponential in the number of intervals; only use it
//! on small graphs.

use bsc_core::cluster_graph::{ClusterGraph, ClusterNodeId};
use bsc_core::error::BscResult;
use bsc_core::path::ClusterPath;
use bsc_core::problem::StableClusterSpec;
use bsc_core::solver::{
    check_not_expired, deadline_error, AlgorithmKind, Solution, SolverStats, StableClusterSolver,
};
use bsc_core::topk::TopKPaths;
use bsc_util::cancel::CancelToken;

/// The exhaustive oracle behind the [`StableClusterSolver`] trait, so the
/// conformance suites can run it through the same `Box<dyn>` dispatch as the
/// real algorithms. It answers every [`StableClusterSpec`]; complexity is
/// exponential in the number of intervals, so only use it on small graphs.
#[derive(Debug, Clone)]
pub struct ExhaustiveSolver {
    spec: StableClusterSpec,
    k: usize,
    cancel: Option<CancelToken>,
}

impl ExhaustiveSolver {
    /// Create an oracle answering `spec` with `k` results.
    pub fn new(spec: StableClusterSpec, k: usize) -> Self {
        ExhaustiveSolver {
            spec,
            k,
            cancel: None,
        }
    }

    /// Attach a cooperative-cancellation token, observed at amortized
    /// checkpoints during the enumeration. Even the oracle honours
    /// deadlines: it backs the serve-protocol `oracle` executor, which must
    /// report the same `DeadlineExceeded` outcomes as the engine.
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }
}

impl StableClusterSolver for ExhaustiveSolver {
    fn name(&self) -> &'static str {
        "exhaustive-oracle"
    }

    fn algorithm(&self) -> AlgorithmKind {
        match self.spec {
            StableClusterSpec::Normalized { .. } => AlgorithmKind::Normalized,
            _ => AlgorithmKind::Bfs,
        }
    }

    fn solve(&mut self, graph: &ClusterGraph) -> BscResult<Solution> {
        check_not_expired(self.cancel.as_ref())?;
        let mut stats = SolverStats::default();
        let cancel = self.cancel.as_ref();
        let paths = match self.spec {
            StableClusterSpec::FullPaths => {
                let l = graph.num_intervals().saturating_sub(1) as u32;
                exhaustive_top_k_cancellable(graph, self.k, l, cancel)?
            }
            StableClusterSpec::ExactLength(l) => {
                exhaustive_top_k_cancellable(graph, self.k, l, cancel)?
            }
            StableClusterSpec::Normalized { l_min } => {
                exhaustive_normalized_top_k_cancellable(graph, self.k, l_min, cancel)?
            }
        };
        stats.paths_generated = paths.len() as u64;
        Ok(Solution {
            paths,
            stats,
            io: Default::default(),
        })
    }
}

/// The exact top-k paths of length exactly `l`, by descending weight.
pub fn exhaustive_top_k(graph: &ClusterGraph, k: usize, l: u32) -> Vec<ClusterPath> {
    // bsc:allow(panic-in-lib) -- with cancel = None the only error source (deadline) cannot fire
    exhaustive_top_k_cancellable(graph, k, l, None).expect("infallible without a cancel token")
}

/// [`exhaustive_top_k`] with an optional cancellation token, observed once
/// per visited path at amortized checkpoints.
pub fn exhaustive_top_k_cancellable(
    graph: &ClusterGraph,
    k: usize,
    l: u32,
    cancel: Option<&CancelToken>,
) -> BscResult<Vec<ClusterPath>> {
    let mut heap = TopKPaths::new(k);
    if k == 0 || l == 0 {
        return Ok(Vec::new());
    }
    let mut tick = 0u32;
    for start in graph.node_ids() {
        extend(
            graph,
            vec![start],
            0.0,
            l,
            cancel,
            &mut tick,
            &mut |path: &ClusterPath| {
                if path.length() == l {
                    heap.offer_by_weight(path.clone());
                }
            },
        )?;
    }
    Ok(heap.into_sorted())
}

/// The exact top-k paths of length at least `l_min`, by descending stability.
pub fn exhaustive_normalized_top_k(graph: &ClusterGraph, k: usize, l_min: u32) -> Vec<ClusterPath> {
    exhaustive_normalized_top_k_cancellable(graph, k, l_min, None)
        .expect("infallible without a cancel token") // bsc:allow(panic-in-lib) -- with cancel = None the only error source (deadline) cannot fire
}

/// [`exhaustive_normalized_top_k`] with an optional cancellation token,
/// observed once per visited path at amortized checkpoints.
pub fn exhaustive_normalized_top_k_cancellable(
    graph: &ClusterGraph,
    k: usize,
    l_min: u32,
    cancel: Option<&CancelToken>,
) -> BscResult<Vec<ClusterPath>> {
    let mut results: Vec<ClusterPath> = Vec::new();
    if k == 0 || l_min == 0 {
        return Ok(results);
    }
    let max_len = graph.num_intervals().saturating_sub(1) as u32;
    let mut tick = 0u32;
    for start in graph.node_ids() {
        extend(
            graph,
            vec![start],
            0.0,
            max_len,
            cancel,
            &mut tick,
            &mut |path: &ClusterPath| {
                if path.length() >= l_min {
                    results.push(path.clone());
                }
            },
        )?;
    }
    results.sort_by(|a, b| {
        b.stability()
            .total_cmp(&a.stability())
            .then_with(|| a.tie_break_key().cmp(&b.tie_break_key()))
    });
    results.truncate(k);
    Ok(results)
}

/// Depth-first enumeration of every path starting with `nodes`, invoking the
/// callback on each path with at least one edge and length at most `max_len`.
/// The cancel token (when present) is observed once per recursion step.
fn extend(
    graph: &ClusterGraph,
    nodes: Vec<ClusterNodeId>,
    weight: f64,
    max_len: u32,
    cancel: Option<&CancelToken>,
    tick: &mut u32,
    visit: &mut impl FnMut(&ClusterPath),
) -> BscResult<()> {
    if let Some(token) = cancel {
        if token.checkpoint(tick) {
            return Err(deadline_error(token));
        }
    }
    let last = *nodes.last().expect("non-empty"); // bsc:allow(panic-in-lib) -- recursion seeds every walk with a start node
    let first = nodes[0];
    if nodes.len() > 1 {
        let path = ClusterPath::new(nodes.clone(), weight);
        visit(&path);
    }
    for edge in graph.children(last) {
        if edge.to.interval - first.interval > max_len {
            continue;
        }
        let mut next = nodes.clone();
        next.push(edge.to);
        extend(
            graph,
            next,
            weight + edge.weight,
            max_len,
            cancel,
            tick,
            visit,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_core::cluster_graph::ClusterGraphBuilder;
    use bsc_core::problem::KlStableParams;
    use bsc_core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
    use bsc_core::BfsStableClusters;

    fn node(interval: u32, index: u32) -> ClusterNodeId {
        ClusterNodeId::new(interval, index)
    }

    #[test]
    fn enumerates_simple_chain() {
        let mut builder = ClusterGraphBuilder::new(0);
        for _ in 0..3 {
            builder.add_interval(1);
        }
        builder.add_edge(node(0, 0), node(1, 0), 0.4);
        builder.add_edge(node(1, 0), node(2, 0), 0.6);
        let graph = builder.build();
        let top = exhaustive_top_k(&graph, 5, 2);
        assert_eq!(top.len(), 1);
        assert!((top[0].weight() - 1.0).abs() < 1e-12);
        let top1 = exhaustive_top_k(&graph, 5, 1);
        assert_eq!(top1.len(), 2);
    }

    #[test]
    fn agrees_with_bfs_on_random_graphs() {
        for seed in 0..3 {
            let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
                num_intervals: 5,
                nodes_per_interval: 6,
                avg_out_degree: 2,
                gap: 1,
                seed: seed + 300,
            })
            .generate();
            for l in [2, 3, 4] {
                let oracle = exhaustive_top_k(&graph, 4, l);
                let bfs = BfsStableClusters::new(KlStableParams::new(4, l))
                    .run(&graph)
                    .unwrap();
                assert_eq!(oracle.len(), bfs.len());
                for (a, b) in oracle.iter().zip(bfs.iter()) {
                    assert!((a.weight() - b.weight()).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn normalized_oracle_respects_min_length() {
        let mut builder = ClusterGraphBuilder::new(0);
        for _ in 0..4 {
            builder.add_interval(1);
        }
        builder.add_edge(node(0, 0), node(1, 0), 0.9);
        builder.add_edge(node(1, 0), node(2, 0), 0.3);
        builder.add_edge(node(2, 0), node(3, 0), 0.3);
        let graph = builder.build();
        let top = exhaustive_normalized_top_k(&graph, 3, 2);
        assert!(!top.is_empty());
        for path in &top {
            assert!(path.length() >= 2);
        }
        // Best by stability is the 0->1->2 prefix: (0.9+0.3)/2 = 0.6.
        assert!((top[0].stability() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_parameters() {
        let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
            num_intervals: 3,
            nodes_per_interval: 3,
            avg_out_degree: 1,
            gap: 0,
            seed: 0,
        })
        .generate();
        assert!(exhaustive_top_k(&graph, 0, 2).is_empty());
        assert!(exhaustive_top_k(&graph, 3, 0).is_empty());
        assert!(exhaustive_normalized_top_k(&graph, 0, 2).is_empty());
    }
}

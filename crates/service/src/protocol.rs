//! The line-delimited JSON protocol of `bsc serve`.
//!
//! One request object per line on stdin, one response object per line on
//! stdout — the std-only transport that composes with anything (pipes,
//! socat, a container sidecar) without pulling in an HTTP stack. The JSON
//! implementation is the workspace-shared [`bsc_util::json`] (the same code
//! that writes and gates the bench baselines).
//!
//! Requests are discriminated by an `"op"` field:
//!
//! | op | fields | effect |
//! |----|--------|--------|
//! | `hello` | `version` | protocol handshake: echoes the server version and current epoch; a version mismatch fails fast (error response, session ends) |
//! | `query` | `algorithm`, `spec`, `k`, `threads`, `storage`, `shards`, `workers`, `store_backed`, `deadline_ms`, `tenant`, `priority` | solve against the current epoch |
//! | `load` | `num_intervals`, `nodes_per_interval`, `avg_out_degree`, `gap`, `seed` | install a synthetic graph as a new epoch |
//! | `open_stream` | `k`, `l`, `gap` | start online ingest |
//! | `push_interval` | `nodes`, `edges` | ingest one interval, publish a new epoch |
//! | `stream_top_k` | — | the online solver's current top-k |
//! | `epoch` | — | current epoch |
//! | `stats` | — | engine counters and latency histograms |
//! | `shutdown` | — | acknowledge and end the session |
//!
//! `algorithm`, `spec` and `storage` use the same textual forms as the CLI
//! (`AlgorithmKind::parse`, `StableClusterSpec::parse`,
//! `StorageSpec::parse`). Edges are `[parent_interval, parent_index,
//! node_index, weight]` quadruples. Responses to deterministic ops carry
//! result data only (no timings, no cache flags), so a transcript can be
//! diffed byte-for-byte against the `bsc oracle` reference executor —
//! timings live in the `stats` response. Path weights are reported both
//! human-readable (`weight`) and as big-endian hex bits (`weight_bits`), so
//! byte-identity survives the text round-trip.

use bsc_core::cluster_graph::ClusterNodeId;
use bsc_core::distributed::FanoutSpec;
use bsc_core::path::ClusterPath;
use bsc_core::problem::StableClusterSpec;
use bsc_core::solver::{AlgorithmKind, QueryPriority, SolverOptions};
use bsc_storage::backend::StorageSpec;
use bsc_util::json::{self, JsonValue};

use crate::engine::QueryRequest;

/// The protocol version this build speaks — the same constant the
/// distributed fan-out wire protocol uses, so one number gates every
/// cross-process conversation in the system.
pub const PROTOCOL_VERSION: u64 = bsc_cluster::PROTOCOL_VERSION;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake: the client announces the protocol version it
    /// speaks; mismatched builds fail fast instead of miscommunicating.
    Hello {
        /// The client's protocol version.
        version: u64,
    },
    /// Solve one query against the current snapshot.
    Query(QueryRequest),
    /// Install a synthetic cluster graph (a new epoch).
    Load {
        /// Number of temporal intervals `m`.
        num_intervals: usize,
        /// Cluster nodes per interval `n`.
        nodes_per_interval: u32,
        /// Average out-degree `d`.
        avg_out_degree: u32,
        /// Maximum gap `g`.
        gap: u32,
        /// Generator seed.
        seed: u64,
    },
    /// Start online ingest with the given top-k parameters.
    OpenStream {
        /// Number of tracked top paths.
        k: usize,
        /// Tracked path length `l`.
        l: u32,
        /// Maximum gap `g`.
        gap: u32,
    },
    /// Ingest one interval into the open stream and publish a new epoch.
    PushInterval {
        /// Number of cluster nodes in the arriving interval.
        nodes: u32,
        /// Edges into the arriving interval, as
        /// `(parent, node_index, weight)`.
        edges: Vec<(ClusterNodeId, u32, f64)>,
    },
    /// The online solver's current top-k paths.
    StreamTopK,
    /// The current snapshot epoch.
    Epoch,
    /// Engine counters and latency histograms.
    Stats,
    /// End the session.
    Shutdown,
}

fn field_u64(obj: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(value) => value
            .as_u64()
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer")),
    }
}

fn field_u32(obj: &JsonValue, key: &str, default: u32) -> Result<u32, String> {
    let value = field_u64(obj, key, u64::from(default))?;
    u32::try_from(value).map_err(|_| format!("field '{key}' exceeds the 32-bit range"))
}

fn field_usize(obj: &JsonValue, key: &str, default: usize) -> Result<usize, String> {
    let value = field_u64(obj, key, default as u64)?;
    usize::try_from(value).map_err(|_| format!("field '{key}' exceeds the platform's range"))
}

fn field_bool(obj: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(value) => value
            .as_bool()
            .ok_or_else(|| format!("field '{key}' must be a boolean")),
    }
}

fn field_str<'a>(obj: &'a JsonValue, key: &str, default: &'a str) -> Result<&'a str, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(value) => value
            .as_str()
            .ok_or_else(|| format!("field '{key}' must be a string")),
    }
}

/// Parse one request line. Errors are human-readable strings the session
/// wraps into an error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = json::parse(line)?;
    let op = doc
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "request must be an object with a string 'op' field".to_string())?;
    match op {
        "hello" => {
            let version = doc
                .get("version")
                .ok_or_else(|| "hello requires a 'version' field".to_string())?
                .as_u64()
                .ok_or_else(|| "field 'version' must be a non-negative integer".to_string())?;
            Ok(Request::Hello { version })
        }
        "query" => {
            let algorithm_name = field_str(&doc, "algorithm", "bfs")?;
            let algorithm = AlgorithmKind::parse(algorithm_name)
                .ok_or_else(|| format!("unknown algorithm '{algorithm_name}'"))?;
            let spec_name = field_str(&doc, "spec", "full")?;
            let spec = StableClusterSpec::parse(spec_name)
                .ok_or_else(|| format!("unknown spec '{spec_name}'"))?;
            let storage_name = field_str(&doc, "storage", "logfile")?;
            let storage = StorageSpec::parse(storage_name)
                .ok_or_else(|| format!("unknown storage '{storage_name}'"))?;
            let fanout = match doc.get("workers") {
                None => None,
                Some(value) => {
                    let list = value
                        .as_str()
                        .ok_or_else(|| "field 'workers' must be a string".to_string())?;
                    Some(FanoutSpec::parse(list).ok_or_else(|| {
                        format!(
                            "field 'workers' must be a comma-separated address list, got '{list}'"
                        )
                    })?)
                }
            };
            // Optional total time budget for the query, in milliseconds.
            // `deadline_ms: 0` is a valid (already expired) budget — it
            // deterministically answers DeadlineExceeded, which the chaos
            // suite relies on.
            let deadline = doc
                .get("deadline_ms")
                .map(|value| {
                    value.as_u64().ok_or_else(|| {
                        "field 'deadline_ms' must be a non-negative integer".to_string()
                    })
                })
                .transpose()?
                .map(std::time::Duration::from_millis);
            // Multi-tenant QoS fields: who the query is billed to and
            // which admission lane it rides. Neither changes the answer,
            // so transcripts stay diffable against the oracle.
            let tenant = match doc.get("tenant") {
                None => None,
                Some(value) => Some(
                    value
                        .as_str()
                        .ok_or_else(|| "field 'tenant' must be a string".to_string())?
                        .to_string(),
                ),
            };
            let priority_name = field_str(&doc, "priority", "normal")?;
            let priority = QueryPriority::parse(priority_name)
                .ok_or_else(|| format!("unknown priority '{priority_name}' (high|normal)"))?;
            let options = SolverOptions::default()
                .threads(field_usize(&doc, "threads", 1)?)
                .storage(storage)
                .bfs_store_backed(field_bool(&doc, "store_backed", false)?)
                .shards(field_usize(&doc, "shards", 1)?)
                .fanout(fanout)
                .deadline(deadline)
                .tenant(tenant)
                .priority(priority);
            Ok(Request::Query(
                QueryRequest::new(algorithm, spec, field_usize(&doc, "k", 10)?).options(options),
            ))
        }
        "load" => Ok(Request::Load {
            num_intervals: field_usize(&doc, "num_intervals", 6)?,
            nodes_per_interval: field_u32(&doc, "nodes_per_interval", 12)?,
            avg_out_degree: field_u32(&doc, "avg_out_degree", 3)?,
            gap: field_u32(&doc, "gap", 1)?,
            seed: field_u64(&doc, "seed", 7)?,
        }),
        "open_stream" => Ok(Request::OpenStream {
            k: field_usize(&doc, "k", 10)?,
            l: field_u32(&doc, "l", 3)?,
            gap: field_u32(&doc, "gap", 1)?,
        }),
        "push_interval" => {
            let nodes = field_u32(&doc, "nodes", 0)?;
            let mut edges = Vec::new();
            if let Some(list) = doc.get("edges") {
                let list = list
                    .as_array()
                    .ok_or_else(|| "field 'edges' must be an array".to_string())?;
                for (i, edge) in list.iter().enumerate() {
                    let quad = edge.as_array().filter(|a| a.len() == 4).ok_or_else(|| {
                        format!(
                            "edge {i} must be [parent_interval, parent_index, node_index, \
                                 weight]"
                        )
                    })?;
                    // Range-checked: a silently truncated id would attach
                    // the edge to the wrong node instead of failing.
                    let component = |j: usize, what: &str| {
                        quad[j]
                            .as_u64()
                            .and_then(|v| u32::try_from(v).ok())
                            .ok_or_else(|| format!("edge {i}: bad {what}"))
                    };
                    let parent_interval = component(0, "parent interval")?;
                    let parent_index = component(1, "parent index")?;
                    let node_index = component(2, "node index")?;
                    let weight = quad[3]
                        .as_f64()
                        .ok_or_else(|| format!("edge {i}: bad weight"))?;
                    edges.push((
                        ClusterNodeId::new(parent_interval, parent_index),
                        node_index,
                        weight,
                    ));
                }
            }
            Ok(Request::PushInterval { nodes, edges })
        }
        "stream_top_k" => Ok(Request::StreamTopK),
        "epoch" => Ok(Request::Epoch),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Render a success response for `op` with extra fields.
pub fn ok_response(op: &str, fields: Vec<(&str, JsonValue)>) -> String {
    let mut pairs = vec![
        ("ok".to_string(), JsonValue::Bool(true)),
        ("op".to_string(), JsonValue::from(op)),
    ];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    JsonValue::object(pairs).render()
}

/// Render an error response.
pub fn error_response(message: &str) -> String {
    JsonValue::object([
        ("ok".to_string(), JsonValue::Bool(false)),
        ("error".to_string(), JsonValue::from(message)),
    ])
    .render()
}

/// Render result paths: each as `{"nodes": [[interval, index], …],
/// "weight": <f64>, "weight_bits": "<16 hex digits>"}`. The hex bits make
/// byte-identity checkable across the text round-trip.
pub fn paths_to_json(paths: &[ClusterPath]) -> JsonValue {
    JsonValue::Array(
        paths
            .iter()
            .map(|path| {
                let nodes = JsonValue::Array(
                    path.nodes()
                        .iter()
                        .map(|n| {
                            JsonValue::Array(vec![
                                JsonValue::from(u64::from(n.interval)),
                                JsonValue::from(u64::from(n.index)),
                            ])
                        })
                        .collect(),
                );
                JsonValue::object([
                    ("nodes".to_string(), nodes),
                    ("weight".to_string(), JsonValue::from(path.weight())),
                    (
                        "weight_bits".to_string(),
                        JsonValue::from(format!("{:016x}", path.weight().to_bits())),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_query_request() {
        let request = parse_request(
            "{\"op\":\"query\",\"algorithm\":\"auto:4096\",\"spec\":\"exact:3\",\"k\":5,\
             \"threads\":2,\"storage\":\"blockcache:8192\",\"shards\":3,\"store_backed\":true}",
        )
        .unwrap();
        let Request::Query(query) = request else {
            panic!("expected a query");
        };
        assert_eq!(
            query.algorithm,
            AlgorithmKind::Auto {
                budget_bytes: Some(4096)
            }
        );
        assert_eq!(query.spec, StableClusterSpec::ExactLength(3));
        assert_eq!(query.k, 5);
        assert_eq!(query.options.threads, 2);
        assert_eq!(
            query.options.storage,
            StorageSpec::BlockCache { budget_bytes: 8192 }
        );
        assert_eq!(query.options.shards, 3);
        assert!(query.options.bfs_store_backed);
    }

    #[test]
    fn parses_hello_and_a_distributed_query() {
        assert_eq!(
            parse_request("{\"op\":\"hello\",\"version\":1}").unwrap(),
            Request::Hello { version: 1 }
        );
        assert!(parse_request("{\"op\":\"hello\"}")
            .unwrap_err()
            .contains("version"));
        let request = parse_request(
            "{\"op\":\"query\",\"spec\":\"exact:2\",\"workers\":\"127.0.0.1:4401, 127.0.0.1:4402\"}",
        )
        .unwrap();
        let Request::Query(query) = request else {
            panic!("expected a query");
        };
        let fanout = query.options.fanout.expect("fanout parsed");
        assert_eq!(fanout.workers, vec!["127.0.0.1:4401", "127.0.0.1:4402"]);
        assert!(parse_request("{\"op\":\"query\",\"workers\":\",\"}")
            .unwrap_err()
            .contains("workers"));
    }

    #[test]
    fn parses_a_query_deadline() {
        let request =
            parse_request("{\"op\":\"query\",\"spec\":\"exact:2\",\"deadline_ms\":250}").unwrap();
        let Request::Query(query) = request else {
            panic!("expected a query");
        };
        let token = query.options.cancel.expect("deadline installs a token");
        let remaining = token.remaining().expect("deadline token has a deadline");
        assert!(remaining <= std::time::Duration::from_millis(250));
        // deadline_ms:0 parses to an immediately expired token.
        let request = parse_request("{\"op\":\"query\",\"deadline_ms\":0}").unwrap();
        let Request::Query(query) = request else {
            panic!("expected a query");
        };
        assert!(query.options.cancel.expect("token").expired());
        assert!(parse_request("{\"op\":\"query\",\"deadline_ms\":\"soon\"}")
            .unwrap_err()
            .contains("deadline_ms"));
    }

    #[test]
    fn parses_tenant_and_priority() {
        let request = parse_request(
            "{\"op\":\"query\",\"spec\":\"exact:2\",\"tenant\":\"acme\",\"priority\":\"high\"}",
        )
        .unwrap();
        let Request::Query(query) = request else {
            panic!("expected a query");
        };
        assert_eq!(query.options.tenant.as_deref(), Some("acme"));
        assert_eq!(query.options.priority, QueryPriority::High);
        // Defaults: untracked tenant, normal lane.
        let request = parse_request("{\"op\":\"query\"}").unwrap();
        let Request::Query(query) = request else {
            panic!("expected a query");
        };
        assert_eq!(query.options.tenant, None);
        assert_eq!(query.options.priority, QueryPriority::Normal);
        // Unknown lanes are rejected, not silently mapped.
        assert!(parse_request("{\"op\":\"query\",\"priority\":\"urgent\"}")
            .unwrap_err()
            .contains("priority"));
        assert!(parse_request("{\"op\":\"query\",\"tenant\":7}")
            .unwrap_err()
            .contains("tenant"));
    }

    #[test]
    fn query_defaults_mirror_the_one_shot_defaults() {
        let request = parse_request("{\"op\":\"query\"}").unwrap();
        let Request::Query(query) = request else {
            panic!("expected a query");
        };
        assert_eq!(query.algorithm, AlgorithmKind::Bfs);
        assert_eq!(query.spec, StableClusterSpec::FullPaths);
        assert_eq!(query.k, 10);
        assert_eq!(query.options, SolverOptions::default());
    }

    #[test]
    fn parses_stream_ops() {
        assert_eq!(
            parse_request("{\"op\":\"open_stream\",\"k\":4,\"l\":2,\"gap\":0}").unwrap(),
            Request::OpenStream { k: 4, l: 2, gap: 0 }
        );
        let push = parse_request(
            "{\"op\":\"push_interval\",\"nodes\":2,\"edges\":[[0,1,0,0.5],[0,0,1,0.25]]}",
        )
        .unwrap();
        assert_eq!(
            push,
            Request::PushInterval {
                nodes: 2,
                edges: vec![
                    (ClusterNodeId::new(0, 1), 0, 0.5),
                    (ClusterNodeId::new(0, 0), 1, 0.25),
                ],
            }
        );
        assert_eq!(parse_request("{\"op\":\"epoch\"}").unwrap(), Request::Epoch);
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("not json", "JSON parse error"),
            ("{}", "op"),
            ("{\"op\":\"fly\"}", "unknown op"),
            ("{\"op\":\"query\",\"algorithm\":\"dijkstra\"}", "algorithm"),
            ("{\"op\":\"query\",\"spec\":\"shortest\"}", "spec"),
            ("{\"op\":\"query\",\"k\":-3}", "k"),
            ("{\"op\":\"push_interval\",\"edges\":[[1,2],[0]]}", "edge 0"),
            // 2^32 would silently truncate to interval 0 if not rejected.
            (
                "{\"op\":\"push_interval\",\"nodes\":1,\"edges\":[[4294967296,0,0,0.5]]}",
                "edge 0: bad parent interval",
            ),
            (
                "{\"op\":\"load\",\"nodes_per_interval\":4294967296}",
                "32-bit range",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn responses_render_canonically() {
        let ok = ok_response("epoch", vec![("epoch", JsonValue::from(3u64))]);
        assert_eq!(ok, "{\"epoch\":3,\"ok\":true,\"op\":\"epoch\"}");
        let err = error_response("bad \"op\"");
        assert!(err.contains("\"ok\":false"));
        assert!(json::parse(&err).is_ok());
    }

    #[test]
    fn paths_round_trip_with_exact_bits() {
        let path = ClusterPath::new(
            vec![ClusterNodeId::new(0, 2), ClusterNodeId::new(2, 1)],
            0.1 + 0.2, // a value with an inexact decimal form
        );
        let rendered = paths_to_json(std::slice::from_ref(&path)).render();
        let parsed = json::parse(&rendered).unwrap();
        let entry = &parsed.as_array().unwrap()[0];
        let bits =
            u64::from_str_radix(entry.get("weight_bits").unwrap().as_str().unwrap(), 16).unwrap();
        assert_eq!(bits, path.weight().to_bits());
        assert_eq!(
            entry.get("weight").unwrap().as_f64().unwrap().to_bits(),
            path.weight().to_bits(),
            "shortest round-trip display must preserve the bits too"
        );
    }
}

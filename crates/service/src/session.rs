//! The protocol session: graph state + an executor behind one line loop.
//!
//! A [`Session`] owns everything a `bsc serve` process holds between lines:
//! the snapshot publication cell, the optional online ingest stream and the
//! executor that answers queries. Two executors exist:
//!
//! * **engine** — the real thing: the fixed thread-pool [`QueryEngine`]
//!   with its bounded admission queue and epoch-tagged solution cache;
//! * **oracle** — a reference executor that answers every query with a
//!   direct one-shot `build_with_options(..).solve_snapshot(..)` (the
//!   `Pipeline::run` code path), no pool, no queue, no cache.
//!
//! Both maintain graph state identically (same generator seeds, same epoch
//! assignment through a [`SnapshotCell`]), and responses to deterministic
//! ops carry no timings — so `bsc serve < session` and
//! `bsc oracle < session` must produce **byte-identical transcripts**. CI
//! diffs exactly that, which makes the whole engine stack (admission,
//! pooling, caching, epoch pinning) conformance-tested against the
//! one-shot solver from the outside.

use std::sync::Arc;

use bsc_core::cluster_graph::ClusterNodeId;
use bsc_core::error::BscResult;
use bsc_core::problem::KlStableParams;
use bsc_core::snapshot::{GraphSnapshot, SnapshotCell};
use bsc_core::streaming::OnlineStableClusters;
use bsc_core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use bsc_util::json::JsonValue;
use bsc_util::LatencyHistogram;

use bsc_core::distributed::FanoutSpec;
use bsc_core::problem::StableClusterSpec;

use crate::engine::{EngineConfig, QueryEngine, QueryRequest};
use crate::protocol::{
    error_response, ok_response, parse_request, paths_to_json, Request, PROTOCOL_VERSION,
};

struct StreamState {
    online: OnlineStableClusters,
    gap: u32,
    /// Mirror of the per-interval node counts, for validating edges before
    /// they reach `push_interval` (which treats violations as panics).
    nodes_per_interval: Vec<u32>,
}

/// One protocol session. Feed it lines; it produces response lines.
pub struct Session {
    /// `Some` in engine mode, `None` in oracle mode.
    engine: Option<QueryEngine>,
    cell: Arc<SnapshotCell>,
    stream: Option<StreamState>,
    /// Coordinator mode: fan queries out to this worker set by default.
    /// Injected only into queries that decompose (not Problem 2) and that
    /// don't name their own `workers`; because distributed answers are
    /// byte-identical to local ones, the transcript is unchanged.
    default_fanout: Option<FanoutSpec>,
}

impl Session {
    /// An engine-backed session (the `bsc serve` executor).
    pub fn engine(config: EngineConfig) -> BscResult<Session> {
        let engine = QueryEngine::new(config)?;
        let cell = Arc::clone(engine.snapshot_cell());
        Ok(Session {
            engine: Some(engine),
            cell,
            stream: None,
            default_fanout: None,
        })
    }

    /// An oracle session (the `bsc oracle` reference executor).
    pub fn oracle() -> Session {
        Session {
            engine: None,
            cell: Arc::new(SnapshotCell::empty()),
            stream: None,
            default_fanout: None,
        }
    }

    /// Set the default fan-out worker set (coordinator mode). Requires a
    /// cluster transport to be installed (`bsc_cluster::install_transport`)
    /// before the first fanned-out query executes.
    pub fn default_fanout(mut self, fanout: Option<FanoutSpec>) -> Session {
        self.default_fanout = fanout;
        self
    }

    /// Handle one input line. Returns the response line and whether the
    /// session should continue (false after `shutdown`). Blank lines and
    /// `#` comments produce no response (`None`).
    pub fn handle_line(&mut self, line: &str) -> (Option<String>, bool) {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return (None, true);
        }
        match parse_request(trimmed) {
            Err(message) => (Some(error_response(&message)), true),
            Ok(Request::Shutdown) => (Some(ok_response("shutdown", vec![])), false),
            Ok(Request::Hello { version }) => {
                if version == PROTOCOL_VERSION {
                    let response = ok_response(
                        "hello",
                        vec![
                            ("version", JsonValue::from(PROTOCOL_VERSION)),
                            ("epoch", JsonValue::from(self.cell.epoch())),
                        ],
                    );
                    (Some(response), true)
                } else {
                    // Mismatched builds fail fast: answer with the error
                    // and end the session rather than miscommunicate.
                    let response = error_response(&format!(
                        "protocol version mismatch: client speaks v{version}, server speaks \
                         v{PROTOCOL_VERSION}; run matching builds"
                    ));
                    (Some(response), false)
                }
            }
            Ok(request) => (Some(self.handle_request(request)), true),
        }
    }

    fn handle_request(&mut self, request: Request) -> String {
        match request {
            Request::Shutdown | Request::Hello { .. } => {
                // handle_line intercepts these before dispatch; answer with
                // a protocol error rather than aborting the session thread.
                error_response("shutdown/hello are handled before dispatch")
            }
            Request::Stats => self.stats_response(),
            Request::Epoch => {
                ok_response("epoch", vec![("epoch", JsonValue::from(self.cell.epoch()))])
            }
            Request::Load {
                num_intervals,
                nodes_per_interval,
                avg_out_degree,
                gap,
                seed,
            } => {
                let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
                    num_intervals,
                    nodes_per_interval,
                    avg_out_degree,
                    gap,
                    seed,
                })
                .generate();
                let (nodes, edges, intervals) =
                    (graph.num_nodes(), graph.num_edges(), graph.num_intervals());
                let snapshot = bsc_core::snapshot::GraphSnapshot::new(graph);
                let installed = match &self.engine {
                    Some(engine) => engine.install(snapshot),
                    None => self.cell.install(snapshot),
                };
                ok_response(
                    "load",
                    vec![
                        ("epoch", JsonValue::from(installed.epoch())),
                        ("intervals", JsonValue::from(intervals)),
                        ("nodes", JsonValue::from(nodes)),
                        ("edges", JsonValue::from(edges)),
                    ],
                )
            }
            Request::OpenStream { k, l, gap } => {
                if k == 0 || l == 0 {
                    return error_response("open_stream requires k >= 1 and l >= 1");
                }
                self.stream = Some(StreamState {
                    online: OnlineStableClusters::new(KlStableParams::new(k, l), gap),
                    gap,
                    nodes_per_interval: Vec::new(),
                });
                ok_response(
                    "open_stream",
                    vec![
                        ("k", JsonValue::from(k)),
                        ("l", JsonValue::from(u64::from(l))),
                        ("gap", JsonValue::from(u64::from(gap))),
                    ],
                )
            }
            Request::PushInterval { nodes, edges } => {
                let Some(stream) = &mut self.stream else {
                    return error_response("no open stream (send open_stream first)");
                };
                let interval = stream.nodes_per_interval.len() as u32;
                // Validate up front: push_interval treats violations as
                // panics (programming errors), but over the wire they are
                // just bad requests.
                for &(parent, node, weight) in &edges {
                    if node >= nodes {
                        return error_response(&format!(
                            "edge target {node} out of range (interval has {nodes} nodes)"
                        ));
                    }
                    if parent.interval >= interval {
                        return error_response(&format!(
                            "parent {parent} must belong to an earlier interval"
                        ));
                    }
                    if interval - parent.interval > stream.gap + 1 {
                        return error_response(&format!(
                            "edge from {parent} exceeds the gap {}",
                            stream.gap
                        ));
                    }
                    if stream
                        .nodes_per_interval
                        .get(parent.interval as usize)
                        .map_or(true, |&count| parent.index >= count)
                    {
                        return error_response(&format!("parent {parent} does not exist"));
                    }
                    if !(weight > 0.0 && weight <= 1.0) {
                        return error_response("edge weights must lie in (0, 1]");
                    }
                }
                let mut parent_edges: Vec<Vec<(ClusterNodeId, f64)>> =
                    vec![Vec::new(); nodes as usize];
                for (parent, node, weight) in edges {
                    parent_edges[node as usize].push((parent, weight));
                }
                stream.online.push_interval(parent_edges);
                stream.nodes_per_interval.push(nodes);
                let snapshot = stream.online.snapshot();
                // Incremental install: the cell records the interval delta
                // so resident window results splice forward instead of
                // re-solving (byte-identical answers — the response and all
                // later query responses render the same either way).
                let intervals = stream.online.num_intervals();
                let edges_ingested = stream.online.edges_ingested();
                let installed = match &self.engine {
                    Some(engine) => engine.install_incremental(snapshot),
                    None => self.cell.install_incremental(snapshot),
                };
                self.carry_cluster_windows(&installed);
                ok_response(
                    "push_interval",
                    vec![
                        ("epoch", JsonValue::from(installed.epoch())),
                        ("intervals", JsonValue::from(intervals)),
                        ("edges_ingested", JsonValue::from(edges_ingested)),
                    ],
                )
            }
            Request::StreamTopK => {
                let Some(stream) = &mut self.stream else {
                    return error_response("no open stream (send open_stream first)");
                };
                let paths = stream.online.current_top_k();
                ok_response("stream_top_k", vec![("paths", paths_to_json(&paths))])
            }
            Request::Query(mut query) => {
                // Coordinator default: fan out queries that decompose and
                // don't bring their own worker set.
                if query.options.fanout.is_none()
                    && self.default_fanout.is_some()
                    && !matches!(query.spec, StableClusterSpec::Normalized { .. })
                {
                    query.options = query.options.fanout(self.default_fanout.clone());
                }
                let rendered_query = vec![
                    ("algorithm", JsonValue::from(query.algorithm.to_string())),
                    ("spec", JsonValue::from(query.spec.to_string())),
                    ("k", JsonValue::from(query.k)),
                ];
                match self.execute(query) {
                    Err(e) => error_response(&e.to_string()),
                    Ok((paths, epoch)) => {
                        let mut fields = rendered_query;
                        fields.push(("epoch", JsonValue::from(epoch)));
                        fields.push(("paths", paths_to_json(&paths)));
                        ok_response("query", fields)
                    }
                }
            }
        }
    }

    /// Run one query through the session's executor. Engine mode goes
    /// through the pool (admission queue, cache, epoch pinning); oracle
    /// mode solves directly — same validation order, so error texts match.
    fn execute(&self, query: QueryRequest) -> BscResult<(Vec<bsc_core::path::ClusterPath>, u64)> {
        match &self.engine {
            Some(engine) => {
                let response = engine.query(query)?;
                Ok((response.solution.paths, response.epoch))
            }
            None => {
                query.validate()?;
                let snapshot = self.cell.load();
                let mut solver = query.algorithm.build_with_options(
                    query.spec,
                    query.k,
                    snapshot.num_intervals(),
                    query.options,
                )?;
                let solution = solver.solve_snapshot(&snapshot)?;
                Ok((solution.paths, snapshot.epoch()))
            }
        }
    }

    /// Coordinator mode: after an incremental install, re-key the fan-out
    /// client's window cache so the windows the epoch delta doesn't touch
    /// answer the new epoch without a worker dispatch. A no-op without a
    /// default fan-out, and when the cell holds no composable delta for
    /// the step (first install, or a plain swap severed the chain) the
    /// cache simply misses and windows re-solve — never a wrong answer.
    fn carry_cluster_windows(&self, installed: &GraphSnapshot) {
        let Some(fanout) = &self.default_fanout else {
            return;
        };
        let to = installed.epoch();
        let Some(from) = to.checked_sub(1) else {
            return;
        };
        if let Some(delta) = self.cell.delta_between(from, to) {
            bsc_cluster::client_for(fanout).carry_forward(from, to, &delta);
        }
    }

    /// Render engine statistics (oracle sessions report their mode only —
    /// they have no pool, queue or cache to describe).
    pub fn stats_response(&self) -> String {
        match &self.engine {
            None => ok_response("stats", vec![("mode", JsonValue::from("oracle"))]),
            Some(engine) => {
                let stats = engine.stats();
                // Coordinator mode: per-worker RPC counters and latency
                // histograms from the pooled cluster client.
                let cluster = self
                    .default_fanout
                    .as_ref()
                    .map(|fanout| bsc_cluster::client_for(fanout).stats_json());
                let mut fields = vec![
                    ("mode", JsonValue::from("engine")),
                    ("epoch", JsonValue::from(stats.epoch)),
                    ("workers", JsonValue::from(stats.workers)),
                    ("queue_capacity", JsonValue::from(stats.queue_capacity)),
                    ("queries", JsonValue::from(stats.queries)),
                    ("errors", JsonValue::from(stats.errors)),
                    ("deadline_hits", JsonValue::from(stats.deadline_hits)),
                    ("queue_expired", JsonValue::from(stats.queue_expired)),
                    ("cancelled", JsonValue::from(stats.cancelled)),
                    ("coalesced", JsonValue::from(stats.coalesced)),
                    ("quota_shed", JsonValue::from(stats.quota_shed)),
                    (
                        "tenants",
                        JsonValue::Array(
                            stats
                                .tenants
                                .iter()
                                .map(|t| {
                                    JsonValue::object([
                                        ("tenant".to_string(), JsonValue::from(t.tenant.as_str())),
                                        ("submitted".to_string(), JsonValue::from(t.submitted)),
                                        ("admitted".to_string(), JsonValue::from(t.admitted)),
                                        ("quota_shed".to_string(), JsonValue::from(t.quota_shed)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "cache",
                        JsonValue::object([
                            ("entries".to_string(), JsonValue::from(stats.cache.entries)),
                            (
                                "capacity".to_string(),
                                JsonValue::from(stats.cache.capacity),
                            ),
                            ("hits".to_string(), JsonValue::from(stats.cache.hits)),
                            ("misses".to_string(), JsonValue::from(stats.cache.misses)),
                            (
                                "evictions".to_string(),
                                JsonValue::from(stats.cache.evictions),
                            ),
                            (
                                "invalidations".to_string(),
                                JsonValue::from(stats.cache.invalidations),
                            ),
                            (
                                "carried_forward".to_string(),
                                JsonValue::from(stats.cache.carried_forward),
                            ),
                            (
                                "delta_dropped".to_string(),
                                JsonValue::from(stats.cache.delta_dropped),
                            ),
                        ]),
                    ),
                    ("queue_wait", histogram_to_json(&stats.queue_wait)),
                    ("solve", histogram_to_json(&stats.solve)),
                ];
                if let Some(cluster) = cluster {
                    fields.push(("cluster", cluster));
                }
                if let Some(windows) = self
                    .default_fanout
                    .as_ref()
                    .map(|fanout| bsc_cluster::client_for(fanout).window_cache_json())
                {
                    fields.push(("cluster_windows", windows));
                }
                ok_response("stats", fields)
            }
        }
    }
}

fn histogram_to_json(histogram: &LatencyHistogram) -> JsonValue {
    JsonValue::object([
        ("count".to_string(), JsonValue::from(histogram.count())),
        (
            "mean_micros".to_string(),
            JsonValue::from(histogram.mean_micros()),
        ),
        (
            "p50_micros".to_string(),
            JsonValue::from(histogram.p50_micros()),
        ),
        (
            "p95_micros".to_string(),
            JsonValue::from(histogram.p95_micros()),
        ),
        (
            "p99_micros".to_string(),
            JsonValue::from(histogram.p99_micros()),
        ),
        (
            "p999_micros".to_string(),
            JsonValue::from(histogram.p999_micros()),
        ),
        (
            "max_micros".to_string(),
            JsonValue::from(histogram.max_micros()),
        ),
        ("summary".to_string(), JsonValue::from(histogram.summary())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(line: &str) -> bool {
        line.contains("\"ok\":true")
    }

    fn drive(session: &mut Session, line: &str) -> String {
        let (response, cont) = session.handle_line(line);
        assert!(cont, "session ended early on {line}");
        response.expect("response expected")
    }

    fn scripted_session() -> Vec<&'static str> {
        vec![
            "{\"op\":\"hello\",\"version\":1}",
            "{\"op\":\"load\",\"num_intervals\":5,\"nodes_per_interval\":10,\"avg_out_degree\":3,\"gap\":1,\"seed\":42}",
            "{\"op\":\"epoch\"}",
            "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"exact:2\",\"k\":4}",
            "{\"op\":\"query\",\"algorithm\":\"dfs\",\"spec\":\"exact:2\",\"k\":4,\"storage\":\"memory\"}",
            "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"exact:2\",\"k\":4,\"shards\":3}",
            "{\"op\":\"open_stream\",\"k\":3,\"l\":1,\"gap\":0}",
            "{\"op\":\"push_interval\",\"nodes\":2}",
            "{\"op\":\"push_interval\",\"nodes\":1,\"edges\":[[0,0,0,0.5],[0,1,0,0.25]]}",
            "{\"op\":\"stream_top_k\"}",
            "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"exact:1\",\"k\":2}",
            // Tenant/priority are QoS-only fields: the answer (and so the
            // transcript) must not change when they are present.
            "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"exact:1\",\"k\":2,\"tenant\":\"acme\",\"priority\":\"high\"}",
        ]
    }

    #[test]
    fn engine_and_oracle_transcripts_are_byte_identical() {
        let mut engine = Session::engine(EngineConfig::default().workers(2)).unwrap();
        let mut oracle = Session::oracle();
        for line in scripted_session() {
            let from_engine = drive(&mut engine, line);
            let from_oracle = drive(&mut oracle, line);
            assert_eq!(from_engine, from_oracle, "diverged on {line}");
            assert!(
                ok(&from_engine),
                "unexpected error on {line}: {from_engine}"
            );
        }
        // Shutdown ends both.
        let (response, cont) = engine.handle_line("{\"op\":\"shutdown\"}");
        assert!(!cont);
        assert!(ok(&response.unwrap()));
    }

    #[test]
    fn stream_errors_are_responses_not_panics() {
        let mut session = Session::oracle();
        assert!(!ok(&drive(
            &mut session,
            "{\"op\":\"push_interval\",\"nodes\":1}"
        )));
        drive(
            &mut session,
            "{\"op\":\"open_stream\",\"k\":2,\"l\":1,\"gap\":0}",
        );
        drive(&mut session, "{\"op\":\"push_interval\",\"nodes\":1}");
        for bad in [
            // target out of range
            "{\"op\":\"push_interval\",\"nodes\":1,\"edges\":[[0,0,5,0.5]]}",
            // nonexistent parent
            "{\"op\":\"push_interval\",\"nodes\":1,\"edges\":[[0,9,0,0.5]]}",
            // weight out of range
            "{\"op\":\"push_interval\",\"nodes\":1,\"edges\":[[0,0,0,1.5]]}",
        ] {
            let response = drive(&mut session, bad);
            assert!(!ok(&response), "{bad} should fail: {response}");
        }
        // The stream is still usable after rejected pushes.
        assert!(ok(&drive(
            &mut session,
            "{\"op\":\"push_interval\",\"nodes\":1,\"edges\":[[0,0,0,0.5]]}"
        )));
    }

    #[test]
    fn blank_lines_and_comments_are_skipped() {
        let mut session = Session::oracle();
        assert_eq!(session.handle_line(""), (None, true));
        assert_eq!(session.handle_line("  # comment"), (None, true));
    }

    #[test]
    fn engine_stats_render_as_json() {
        let mut session = Session::engine(EngineConfig::default().workers(1)).unwrap();
        drive(
            &mut session,
            "{\"op\":\"load\",\"num_intervals\":4,\"nodes_per_interval\":6,\"avg_out_degree\":2,\"gap\":0,\"seed\":1}",
        );
        drive(
            &mut session,
            "{\"op\":\"query\",\"spec\":\"exact:2\",\"k\":3}",
        );
        let stats = drive(&mut session, "{\"op\":\"stats\"}");
        let doc = bsc_util::json::parse(&stats).unwrap();
        assert_eq!(doc.get("mode").unwrap().as_str(), Some("engine"));
        assert_eq!(doc.get("queries").unwrap().as_u64(), Some(1));
        assert!(doc.get("queue_wait").unwrap().get("count").is_some());
        let oracle_stats = drive(&mut Session::oracle(), "{\"op\":\"stats\"}");
        assert!(oracle_stats.contains("\"mode\":\"oracle\""));
    }
}

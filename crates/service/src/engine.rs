//! The fixed thread-pool query executor.
//!
//! [`QueryEngine`] is the long-lived heart of `bsc serve`: it owns the
//! current [`GraphSnapshot`] (behind a [`SnapshotCell`]), a fixed pool of
//! worker threads, a bounded two-lane admission queue
//! ([`crate::admission::AdmissionQueue`]) and an epoch-tagged LRU cache of
//! solutions. Queries pin the snapshot current at **admission**, so a
//! snapshot swap mid-stream never blocks, retargets or corrupts an
//! in-flight query — it only means later queries see the newer epoch.
//!
//! Multi-tenant QoS is layered on the same admission seam:
//!
//! * [`SolverOptions::tenant`] attributes each query to a tenant; the engine
//!   keeps per-tenant submitted/admitted/shed counters
//!   ([`EngineStats::tenants`]) and, when [`EngineConfig::quota`] is set,
//!   charges a token-bucket per tenant — exhausted tenants are shed with
//!   [`BscError::Saturated`] *before* they can crowd the queue.
//! * [`SolverOptions::priority`] picks the admission lane; the high lane is
//!   served first subject to the starvation bound documented in
//!   [`crate::admission`].
//! * Workers coalesce queued queries that share a `(epoch, cache key)` with
//!   the solve that just finished ([`crate::batch`]), answering all of them
//!   from one window scan. Coalesced answers are clones of the leader's
//!   solution, so they are byte-identical to what a serial execution of each
//!   query would produce.
//!
//! Execution goes through the same object-safe
//! [`StableClusterSolver`](bsc_core::solver::StableClusterSolver) seam as
//! everything else: any [`AlgorithmKind`] (including `Auto` resolution and
//! sharded solving via [`SolverOptions::shards`]) with per-query
//! [`SolverOptions`]. The determinism invariant therefore carries over — an
//! engine answer is byte-identical to `Pipeline::run` on the same graph —
//! which `tests/query_service.rs` asserts for every algorithm × storage
//! backend × shard count, under concurrent mixed-algorithm storms and
//! across epoch swaps.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bsc_core::cluster_graph::ClusterGraph;
use bsc_core::delta::WindowSet;
use bsc_core::error::{BscError, BscResult};
use bsc_core::problem::StableClusterSpec;
use bsc_core::snapshot::{GraphSnapshot, SnapshotCell};
use bsc_core::solver::{deadline_error, AlgorithmKind, Solution, SolverOptions};
use bsc_util::cancel::CancelToken;
use bsc_util::LatencyHistogram;

use crate::admission::{AdmissionQueue, PushError};
use crate::cache::{CacheStats, SolutionCache};

/// A per-tenant token-bucket admission quota: sustained `rate_per_sec`
/// queries per second with bursts of up to `burst` queries. Integer fields
/// only — the bucket's internal arithmetic runs in micro-tokens (1 query =
/// 1 000 000 micro-tokens, refilled at `rate_per_sec` micro-tokens per
/// microsecond), so accounting is exact and the config stays `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantQuota {
    /// Sustained admissions per second per tenant. Must be ≥ 1.
    pub rate_per_sec: u64,
    /// Bucket capacity: how many queries a tenant can burst above the
    /// sustained rate. Must be ≥ 1.
    pub burst: u64,
}

impl TenantQuota {
    /// A quota of `rate_per_sec` sustained admissions with `burst` headroom.
    pub fn new(rate_per_sec: u64, burst: u64) -> TenantQuota {
        TenantQuota {
            rate_per_sec,
            burst,
        }
    }
}

/// Sizing knobs for a [`QueryEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads in the fixed pool. Must be ≥ 1. See
    /// `docs/service.md` for sizing guidance (workers × per-query threads
    /// should not exceed the machine's cores).
    pub workers: usize,
    /// Capacity of the bounded two-lane admission queue (shared across both
    /// priority lanes). A full queue blocks [`QueryEngine::submit`] and
    /// rejects [`QueryEngine::try_submit`] with [`BscError::Saturated`].
    /// Must be ≥ 1.
    pub queue_capacity: usize,
    /// Capacity of the epoch-tagged LRU solution cache (0 disables it).
    pub cache_capacity: usize,
    /// Per-tenant token-bucket quota. `None` (the default) admits every
    /// tenant without metering; `Some` sheds a tenant's above-quota traffic
    /// with [`BscError::Saturated`] at submission, before it occupies a
    /// queue slot. Queries with no [`SolverOptions::tenant`] are never
    /// metered.
    pub quota: Option<TenantQuota>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            cache_capacity: 128,
            quota: None,
        }
    }
}

impl EngineConfig {
    /// Set the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the admission-queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the solution-cache capacity.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Set (or clear) the per-tenant admission quota.
    pub fn quota(mut self, quota: Option<TenantQuota>) -> Self {
        self.quota = quota;
        self
    }

    fn validate(&self) -> BscResult<()> {
        if self.workers == 0 {
            return Err(BscError::InvalidConfig(
                "engine workers must be >= 1".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(BscError::InvalidConfig(
                "engine queue capacity must be >= 1".into(),
            ));
        }
        if let Some(quota) = self.quota {
            if quota.rate_per_sec == 0 || quota.burst == 0 {
                return Err(BscError::InvalidConfig(
                    "tenant quota rate and burst must be >= 1".into(),
                ));
            }
        }
        Ok(())
    }
}

/// One query: the problem (spec, `k`), the algorithm that answers it and
/// the deployment-level [`SolverOptions`] — exactly the parameters of
/// [`AlgorithmKind::build_with_options`], so anything the one-shot path can
/// solve, the engine can serve.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Which algorithm answers the query (including `Auto` and, through
    /// [`SolverOptions::shards`], sharded solving).
    pub algorithm: AlgorithmKind,
    /// Which problem to solve.
    pub spec: StableClusterSpec,
    /// Number of result paths.
    pub k: usize,
    /// Per-query deployment options (threads, storage backend, shards).
    pub options: SolverOptions,
}

impl QueryRequest {
    /// A request with default options.
    pub fn new(algorithm: AlgorithmKind, spec: StableClusterSpec, k: usize) -> Self {
        QueryRequest {
            algorithm,
            spec,
            k,
            options: SolverOptions::default(),
        }
    }

    /// Replace the options.
    pub fn options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// The canonical cache key: every parameter that can change the answer
    /// (or its cost profile), rendered through the same stable textual
    /// forms the CLI and protocol use.
    pub fn cache_key(&self) -> String {
        // `cancel`, `tenant` and `priority` are deliberately excluded: a
        // deadline changes whether the answer arrives, a tenant changes who
        // is billed and a priority changes how long the query waits — never
        // what the answer is — so such queries share cache entries.
        let SolverOptions {
            threads,
            storage,
            bfs_store_backed,
            shards,
            fanout,
            cancel: _,
            tenant: _,
            priority: _,
        } = &self.options;
        let fanout = fanout
            .as_ref()
            .map_or_else(|| "none".to_string(), |f| f.to_string());
        format!(
            "alg={}|spec={}|k={}|threads={threads}|storage={storage}|store_backed={bfs_store_backed}|shards={shards}|fanout={fanout}",
            self.algorithm, self.spec, self.k
        )
    }

    pub(crate) fn validate(&self) -> BscResult<()> {
        if self.k == 0 {
            return Err(BscError::InvalidConfig(
                "k must be positive: a top-0 query returns nothing".into(),
            ));
        }
        if self.options.threads == 0 {
            return Err(BscError::InvalidConfig(
                "threads must be >= 1 (1 = sequential)".into(),
            ));
        }
        if self.options.shards == 0 {
            return Err(BscError::InvalidConfig(
                "shards must be >= 1 (1 = unsharded)".into(),
            ));
        }
        self.algorithm.check_spec(self.spec)
    }
}

/// A finished query: the [`Solution`] plus where and how it was computed.
///
/// `solution.stats.queue_wait_micros` carries the admission-queue wait and
/// `solution.stats.solve_micros` the solve wall-clock (0 for cache hits —
/// nothing was solved).
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The solver output; `paths` are byte-identical to the one-shot solve
    /// of the same request against the same graph.
    pub solution: Solution,
    /// Epoch of the snapshot the query was answered against (pinned at
    /// admission).
    pub epoch: u64,
    /// Whether the answer came from the solution cache.
    pub cached: bool,
}

/// Handle to a submitted query; redeem it with [`QueryTicket::wait`].
#[derive(Debug)]
pub struct QueryTicket {
    receiver: mpsc::Receiver<BscResult<QueryResponse>>,
}

impl QueryTicket {
    /// Block until the query finishes.
    pub fn wait(self) -> BscResult<QueryResponse> {
        self.receiver.recv().unwrap_or(Err(BscError::Shutdown))
    }
}

pub(crate) struct Job {
    pub(crate) request: QueryRequest,
    pub(crate) snapshot: GraphSnapshot,
    /// The request's cache key, computed once at admission — the batch
    /// executor compares it against queued jobs to find coalescable ones.
    pub(crate) key: String,
    pub(crate) enqueued: Instant,
    pub(crate) reply: mpsc::Sender<BscResult<QueryResponse>>,
}

/// One tenant's admission counters, as reported by [`EngineStats::tenants`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant name ([`SolverOptions::tenant`]).
    pub tenant: String,
    /// Queries this tenant submitted (admitted or not).
    pub submitted: u64,
    /// Queries that made it into the admission queue.
    pub admitted: u64,
    /// Queries shed by the tenant's token-bucket quota (a subset of
    /// `submitted - admitted`; the rest of the gap is queue-full shedding
    /// and admission deadline hits).
    pub quota_shed: u64,
}

/// Mutable per-tenant bookkeeping: counters plus the token bucket.
struct TenantState {
    submitted: u64,
    admitted: u64,
    quota_shed: u64,
    /// Remaining budget in micro-tokens (1 admission = 1 000 000).
    tokens_micro: u64,
    /// Engine-relative timestamp (µs) of the last refill.
    last_micros: u64,
}

/// Aggregate engine counters and latency distributions, as returned by
/// [`QueryEngine::stats`].
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Current snapshot epoch.
    pub epoch: u64,
    /// Queries answered (including cache hits and errors).
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Queries that ended in [`BscError::DeadlineExceeded`] — at admission,
    /// in the queue, or mid-solve. A subset of `errors`.
    pub deadline_hits: u64,
    /// Queries whose budget was already gone when a worker dequeued them:
    /// failed fast without solving. A subset of `deadline_hits`.
    pub queue_expired: u64,
    /// In-flight queries cancelled by [`QueryEngine::shutdown`].
    pub cancelled: u64,
    /// Queries answered by coalescing onto another query's solve of the
    /// same `(epoch, cache key)` instead of scanning the windows again
    /// (the coalesced queries themselves — the leader solve is not
    /// counted).
    pub coalesced: u64,
    /// Queries shed by a tenant token-bucket quota (summed over tenants).
    /// A subset of neither `queries` nor `errors` — shed queries never
    /// reach a worker.
    pub quota_shed: u64,
    /// Per-tenant admission counters, sorted by tenant name. Tenants
    /// appear here whenever their queries carry
    /// [`SolverOptions::tenant`], with or without a configured quota.
    pub tenants: Vec<TenantStats>,
    /// Distribution of admission-queue waits.
    pub queue_wait: LatencyHistogram,
    /// Distribution of solve times (cache hits and coalesced answers
    /// excluded — only actual window scans).
    pub solve: LatencyHistogram,
}

#[derive(Default)]
pub(crate) struct Metrics {
    pub(crate) queries: u64,
    pub(crate) errors: u64,
    pub(crate) deadline_hits: u64,
    pub(crate) queue_expired: u64,
    pub(crate) cancelled: u64,
    pub(crate) coalesced: u64,
    pub(crate) quota_shed: u64,
    pub(crate) queue_wait: LatencyHistogram,
    pub(crate) solve: LatencyHistogram,
}

pub(crate) struct Shared {
    /// The snapshot cell, shared with the engine front: workers consult its
    /// delta chain to decide whether a windowed (delta) solve can splice a
    /// carried-forward window set — see [`bsc_core::delta`].
    pub(crate) cell: Arc<SnapshotCell>,
    pub(crate) cache: Mutex<SolutionCache>,
    pub(crate) metrics: Mutex<Metrics>,
    /// Per-tenant counters and token buckets, keyed by tenant name.
    tenants: Mutex<HashMap<String, TenantState>>,
    /// Queries admitted but not yet answered (gauge).
    pub(crate) in_flight: AtomicU64,
    /// Cancel tokens of the queries being solved *right now*, so shutdown
    /// can trip every one of them. Tokens register on solve start and
    /// deregister (by identity) when the solve settles.
    pub(crate) solving: Mutex<Vec<CancelToken>>,
    /// Set by shutdown: workers fail queued-but-unstarted jobs fast with
    /// [`BscError::Shutdown`] instead of solving into the void.
    pub(crate) shutting_down: AtomicBool,
}

/// The long-lived query executor. See the module docs.
pub struct QueryEngine {
    cell: Arc<SnapshotCell>,
    shared: Arc<Shared>,
    queue: Arc<AdmissionQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    config: EngineConfig,
    /// The engine's time origin: tenant token buckets are refilled against
    /// microseconds elapsed since this instant, so a harness driving
    /// [`QueryEngine::try_submit_at`] with its own schedule gets the exact
    /// same quota decisions on every run.
    origin: Instant,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("config", &self.config)
            .field("epoch", &self.cell.epoch())
            .field("shut_down", &self.queue.is_closed())
            .finish()
    }
}

impl QueryEngine {
    /// Start an engine over an empty epoch-0 graph.
    pub fn new(config: EngineConfig) -> BscResult<QueryEngine> {
        Self::with_cell(config, Arc::new(SnapshotCell::empty()))
    }

    /// Start an engine reading snapshots from an existing cell (so an
    /// external ingest path can publish epochs directly; prefer
    /// [`QueryEngine::install`] where possible — it also invalidates the
    /// solution cache, which a bare `cell.install` cannot).
    pub fn with_cell(config: EngineConfig, cell: Arc<SnapshotCell>) -> BscResult<QueryEngine> {
        config.validate()?;
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity));
        let shared = Arc::new(Shared {
            cell: Arc::clone(&cell),
            cache: Mutex::new(SolutionCache::new(config.cache_capacity)),
            metrics: Mutex::new(Metrics::default()),
            tenants: Mutex::new(HashMap::new()),
            in_flight: AtomicU64::new(0),
            solving: Mutex::new(Vec::new()),
            shutting_down: AtomicBool::new(false),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bsc-query-{i}"))
                    .spawn(move || worker_loop(&queue, &shared))
                    .expect("spawn query worker") // bsc:allow(panic-in-lib) -- engine construction, before any query is accepted; no caller can proceed without workers
            })
            .collect();
        Ok(QueryEngine {
            cell,
            shared,
            queue,
            workers,
            config,
            origin: Instant::now(),
        })
    }

    /// The engine's sizing configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The snapshot publication point (shared with ingest paths).
    pub fn snapshot_cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Install a new snapshot: atomically swap it into the cell (assigning
    /// the next epoch) and invalidate the solution cache. In-flight queries
    /// keep the snapshot they pinned at admission. Returns the installed
    /// snapshot.
    pub fn install(&self, snapshot: GraphSnapshot) -> GraphSnapshot {
        let installed = self.cell.install(snapshot);
        self.shared
            .cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .advance_epoch(installed.epoch());
        installed
    }

    /// Convenience wrapper over [`QueryEngine::install`] for a bare graph.
    pub fn install_graph(&self, graph: ClusterGraph) -> GraphSnapshot {
        self.install(GraphSnapshot::new(graph))
    }

    /// Install a snapshot produced incrementally from the previous one (the
    /// streamed-ingest path): the cell records the interval delta between
    /// the generations and the solution cache advances *selectively* —
    /// window-set entries are carried forward as splice sources instead of
    /// dropped, so the next solve of a cached key re-solves only the
    /// windows the delta touches. Byte-identical answers either way; see
    /// [`bsc_core::delta`]. Returns the installed snapshot.
    pub fn install_incremental(&self, snapshot: GraphSnapshot) -> GraphSnapshot {
        let installed = self.cell.install_incremental(snapshot);
        self.shared
            .cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .advance_epoch_incremental(installed.epoch());
        installed
    }

    /// Admit a query, **blocking** while the bounded queue is full. The
    /// snapshot is pinned now, not when a worker picks the job up.
    ///
    /// # Blocking hazard
    ///
    /// This wait is **unbounded**: if every worker is stuck on long solves
    /// and the queue stays full, the calling thread blocks indefinitely —
    /// in a server loop that means one saturated engine wedges the
    /// connection handler. Latency-sensitive callers should use
    /// [`QueryEngine::submit_deadline`] (bounded wait, and the same budget
    /// then covers queueing and solving) or [`QueryEngine::try_submit`]
    /// (fail fast with [`BscError::Saturated`]). A tenant over its quota is
    /// shed with [`BscError::Saturated`] immediately — quota exhaustion
    /// never blocks.
    pub fn submit(&self, request: QueryRequest) -> BscResult<QueryTicket> {
        self.charge_quota(&request, self.now_micros())?;
        let (job, ticket) = self.admit(request)?;
        let priority = job.request.options.priority;
        let tenant = job.request.options.tenant.clone();
        // Count the job before it becomes visible to workers — a worker
        // could otherwise dequeue, solve and decrement first, wrapping the
        // gauge below zero.
        self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
        if self.queue.push_blocking(job, priority).is_err() {
            self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            return Err(BscError::Shutdown);
        }
        self.record_admitted(tenant.as_deref());
        Ok(ticket)
    }

    /// Admit a query without blocking: a full queue — or an exhausted
    /// tenant quota — is reported as [`BscError::Saturated`]
    /// (back-pressure to shed load instead of buffering unboundedly).
    pub fn try_submit(&self, request: QueryRequest) -> BscResult<QueryTicket> {
        self.try_submit_at(request, self.now_micros())
    }

    /// [`QueryEngine::try_submit`] against an explicit engine-relative
    /// clock reading (microseconds since engine start). Token buckets
    /// refill from `now_micros`, so a caller replaying a fixed arrival
    /// schedule — the `bsc_bench::load` harness — gets identical
    /// quota-shed decisions on every run, independent of wall-clock
    /// jitter. Readings that go backwards are treated as "no time passed"
    /// (no refill, no regression of the bucket clock).
    pub fn try_submit_at(&self, request: QueryRequest, now_micros: u64) -> BscResult<QueryTicket> {
        self.charge_quota(&request, now_micros)?;
        let (job, ticket) = self.admit(request)?;
        let priority = job.request.options.priority;
        let tenant = job.request.options.tenant.clone();
        // Pre-count for the same reason as `submit`; undo on rejection.
        self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
        match self.queue.try_push(job, priority) {
            Ok(()) => {
                self.record_admitted(tenant.as_deref());
                Ok(ticket)
            }
            Err(error) => {
                self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                match error {
                    PushError::Full(_) => Err(BscError::Saturated {
                        capacity: self.config.queue_capacity,
                    }),
                    PushError::Closed(_) => Err(BscError::Shutdown),
                }
            }
        }
    }

    /// Admit a query under a total time budget covering **everything**:
    /// waiting for a queue slot, waiting in the queue, and the solve
    /// itself. If the request has no cancel token one is installed with
    /// `budget` as its deadline; an existing token is kept (the explicit
    /// deadline wins) and `budget` only bounds the admission wait.
    ///
    /// Admission polls the queue instead of blocking, so a saturated
    /// engine costs at most the budget, never a wedge. An expired budget
    /// is reported as [`BscError::DeadlineExceeded`]; an exhausted tenant
    /// quota as [`BscError::Saturated`], immediately.
    pub fn submit_deadline(
        &self,
        mut request: QueryRequest,
        budget: Duration,
    ) -> BscResult<QueryTicket> {
        self.charge_quota(&request, self.now_micros())?;
        let token = request
            .options
            .cancel
            .get_or_insert_with(|| CancelToken::after(budget))
            .clone();
        let admission_deadline = Instant::now() + budget;
        let (mut job, ticket) = self.admit(request)?;
        let priority = job.request.options.priority;
        let tenant = job.request.options.tenant.clone();
        self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
        loop {
            match self.queue.try_push(job, priority) {
                Ok(()) => {
                    self.record_admitted(tenant.as_deref());
                    return Ok(ticket);
                }
                Err(PushError::Full(returned)) => {
                    if token.expired() || Instant::now() >= admission_deadline {
                        self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                        let mut metrics = self
                            .shared
                            .metrics
                            .lock()
                            .unwrap_or_else(|p| p.into_inner());
                        metrics.deadline_hits += 1;
                        metrics.queue_expired += 1;
                        return Err(deadline_error(&token));
                    }
                    job = returned;
                    std::thread::sleep(ADMISSION_POLL);
                }
                Err(PushError::Closed(_)) => {
                    self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    return Err(BscError::Shutdown);
                }
            }
        }
    }

    /// Submit and wait — the blocking convenience path.
    pub fn query(&self, request: QueryRequest) -> BscResult<QueryResponse> {
        self.submit(request)?.wait()
    }

    /// Aggregate counters and latency distributions since start.
    pub fn stats(&self) -> EngineStats {
        let cache = self
            .shared
            .cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .stats();
        let mut tenants: Vec<TenantStats> = self
            .shared
            .tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(tenant, state)| TenantStats {
                tenant: tenant.clone(),
                submitted: state.submitted,
                admitted: state.admitted,
                quota_shed: state.quota_shed,
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let metrics = self
            .shared
            .metrics
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        EngineStats {
            workers: self.config.workers,
            queue_capacity: self.config.queue_capacity,
            epoch: self.cell.epoch(),
            queries: metrics.queries,
            errors: metrics.errors,
            cache,
            deadline_hits: metrics.deadline_hits,
            queue_expired: metrics.queue_expired,
            cancelled: metrics.cancelled,
            coalesced: metrics.coalesced,
            quota_shed: metrics.quota_shed,
            tenants,
            queue_wait: metrics.queue_wait.clone(),
            solve: metrics.solve.clone(),
        }
    }

    /// Queries admitted but not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Stop accepting queries and join the workers — promptly. In-flight
    /// solves have their cancel tokens tripped (they unwind within one
    /// checkpoint interval and their tickets read
    /// [`BscError::DeadlineExceeded`]); queued-but-unstarted jobs are
    /// failed fast with [`BscError::Shutdown`] instead of being solved
    /// into the void. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        // Workers drain what is queued (failing it fast via the flag
        // below), then read `None` from the closed queue and exit.
        self.shared.shutting_down.store(true, Ordering::Relaxed);
        self.queue.close();
        {
            let solving = self
                .shared
                .solving
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            let mut metrics = self
                .shared
                .metrics
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            for token in solving.iter() {
                if !token.is_cancelled() {
                    token.cancel();
                    metrics.cancelled += 1;
                }
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn admit(&self, request: QueryRequest) -> BscResult<(Job, QueryTicket)> {
        request.validate()?;
        let (reply, receiver) = mpsc::channel();
        let key = request.cache_key();
        let job = Job {
            request,
            snapshot: self.cell.load(),
            key,
            enqueued: Instant::now(),
            reply,
        };
        Ok((job, QueryTicket { receiver }))
    }

    /// Microseconds since the engine's time origin — the clock
    /// [`QueryEngine::try_submit`] feeds the token buckets.
    fn now_micros(&self) -> u64 {
        duration_micros(self.origin.elapsed())
    }

    /// Account a submission against the request's tenant (counters always,
    /// the token bucket when a quota is configured). An exhausted bucket
    /// sheds the query with [`BscError::Saturated`] before it can occupy a
    /// queue slot. Tokens charged for a query that is later refused by a
    /// full queue are **not** refunded — the decision stream stays a pure
    /// function of the arrival schedule, which is what makes the load
    /// harness reproducible.
    fn charge_quota(&self, request: &QueryRequest, now_micros: u64) -> BscResult<()> {
        let Some(tenant) = request.options.tenant.as_deref() else {
            return Ok(());
        };
        let quota = self.config.quota;
        let mut tenants = self
            .shared
            .tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let state = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                submitted: 0,
                admitted: 0,
                quota_shed: 0,
                // A new tenant starts with a full bucket — the burst is
                // headroom, not something to be earned first.
                tokens_micro: quota.map_or(0, |q| q.burst.saturating_mul(MICRO_TOKENS_PER_QUERY)),
                last_micros: now_micros,
            });
        state.submitted += 1;
        let Some(quota) = quota else {
            return Ok(());
        };
        if now_micros > state.last_micros {
            let delta = now_micros - state.last_micros;
            let refill = delta.saturating_mul(quota.rate_per_sec);
            let capacity = quota.burst.saturating_mul(MICRO_TOKENS_PER_QUERY);
            state.tokens_micro = state.tokens_micro.saturating_add(refill).min(capacity);
            state.last_micros = now_micros;
        }
        if state.tokens_micro < MICRO_TOKENS_PER_QUERY {
            state.quota_shed += 1;
            drop(tenants);
            self.shared
                .metrics
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .quota_shed += 1;
            return Err(BscError::Saturated {
                capacity: self.config.queue_capacity,
            });
        }
        state.tokens_micro -= MICRO_TOKENS_PER_QUERY;
        Ok(())
    }

    /// Bump the tenant's admitted counter after a successful queue push.
    fn record_admitted(&self, tenant: Option<&str>) {
        let Some(tenant) = tenant else { return };
        if let Some(state) = self
            .shared
            .tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get_mut(tenant)
        {
            state.admitted += 1;
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

pub(crate) fn duration_micros(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Poll period of [`QueryEngine::submit_deadline`]'s bounded admission
/// wait. Coarse enough to stay cheap, fine enough that admission latency
/// under churn stays in the single-digit milliseconds.
const ADMISSION_POLL: Duration = Duration::from_millis(2);

/// Token-bucket resolution: one admission costs this many micro-tokens, and
/// a bucket refills `rate_per_sec` micro-tokens per elapsed microsecond —
/// exact integer accounting with no floating point in the admission path.
const MICRO_TOKENS_PER_QUERY: u64 = 1_000_000;

/// What a worker learned from settling one job, kept so the batch executor
/// can answer coalesced followers without re-solving (the response) and
/// keep its fan-out loop cancellable (the token).
pub(crate) struct JobOutcome {
    /// The successful response, clonable for followers (`None` when the
    /// job errored — errors are not `Clone`, so followers re-execute).
    pub(crate) response: Option<QueryResponse>,
    /// The cancel token the solve ran under, if it got that far.
    pub(crate) token: Option<CancelToken>,
}

fn worker_loop(queue: &AdmissionQueue<Job>, shared: &Shared) {
    while let Some(job) = queue.pop() {
        let epoch = job.snapshot.epoch();
        let key = job.key.clone();
        // Only token-less queries coalesce: a follower answered from a
        // leader's solve would otherwise inherit the wrong deadline
        // behaviour (its own budget could be gone, or the leader's not).
        // Eligibility is decided *before* processing — execute() installs
        // a token on every solve.
        let eligible = crate::batch::coalescable(&job);
        let outcome = process_job(job, shared);
        if eligible {
            // Drain *after* the solve: every matching query that arrived
            // while the windows were being scanned shares the answer.
            let followers = crate::batch::drain_followers(queue, epoch, &key);
            crate::batch::settle_followers(followers, &outcome, shared);
        }
    }
}

/// Settle one dequeued job end to end: fail fast if its budget died in the
/// queue or the engine is shutting down, otherwise execute it; record
/// metrics; reply. Returns the outcome the batch executor needs.
pub(crate) fn process_job(mut job: Job, shared: &Shared) -> JobOutcome {
    let queue_wait = job.enqueued.elapsed();
    // Queued-but-expired queries fail fast: the budget is gone, so
    // solving would only delay the error (and every query behind it).
    let expired_in_queue = job
        .request
        .options
        .cancel
        .as_ref()
        .filter(|token| token.expired())
        .map(deadline_error);
    let was_expired_in_queue = expired_in_queue.is_some();
    let result = if let Some(error) = expired_in_queue {
        Err(error)
    } else if shared.shutting_down.load(Ordering::Relaxed) {
        Err(BscError::Shutdown)
    } else {
        execute(&mut job, queue_wait, shared)
    };
    {
        let mut metrics = shared.metrics.lock().unwrap_or_else(|p| p.into_inner());
        metrics.queries += 1;
        metrics.queue_wait.record(queue_wait);
        match &result {
            Ok(response) if !response.cached => {
                metrics
                    .solve
                    .record_micros(response.solution.stats.solve_micros);
            }
            Ok(_) => {}
            Err(e) => {
                metrics.errors += 1;
                if matches!(e, BscError::DeadlineExceeded { .. }) {
                    metrics.deadline_hits += 1;
                    if was_expired_in_queue {
                        metrics.queue_expired += 1;
                    }
                }
            }
        }
    }
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    let outcome = JobOutcome {
        response: result.as_ref().ok().cloned(),
        token: job.request.options.cancel.clone(),
    };
    // A dropped ticket just means nobody is waiting for the answer.
    let _ = job.reply.send(result);
    outcome
}

/// Whether a query can run through the windowed (delta) solve path with an
/// answer — including errors — indistinguishable from the direct solve.
/// Exact-length, local (no fan-out) queries qualify: sharded ones are
/// already a windowed merge, and unsharded ones must pass the same
/// algorithm/spec support check the direct build would apply (TA's
/// full-paths-only rule), so an unsupported combination still surfaces the
/// identical error from the direct path.
fn delta_eligible(request: &QueryRequest, num_intervals: usize) -> bool {
    if !matches!(request.spec, StableClusterSpec::ExactLength(_))
        || request.k == 0
        || request.options.fanout.is_some()
    {
        return false;
    }
    request.options.shards > 1 || request.algorithm.supports(request.spec, num_intervals)
}

fn execute(job: &mut Job, queue_wait: Duration, shared: &Shared) -> BscResult<QueryResponse> {
    let epoch = job.snapshot.epoch();
    let key = job.request.cache_key();
    if let Some(mut solution) = shared
        .cache
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(epoch, &key)
    {
        solution.stats.queue_wait_micros = duration_micros(queue_wait);
        solution.stats.solve_micros = 0;
        return Ok(QueryResponse {
            solution,
            epoch,
            cached: true,
        });
    }
    // Windowed (delta) solving engages only while the cell is being fed
    // incrementally — a batch-loaded engine keeps the direct path. When a
    // carried-forward window set for this key exists *and* the cell can
    // prove a composable delta from its epoch to ours, the solve splices
    // untouched windows instead of re-solving them.
    let delta_mode =
        delta_eligible(&job.request, job.snapshot.num_intervals()) && shared.cell.has_deltas();
    let prior = if delta_mode {
        shared
            .cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .spliceable(epoch, &key)
            .and_then(|(from_epoch, set)| {
                shared
                    .cell
                    .delta_between(from_epoch, epoch)
                    .map(|delta| (set, delta))
            })
    } else {
        None
    };
    // Every solve runs under a cancel token — installing one on demand is
    // what lets shutdown reach queries submitted without a deadline. The
    // token is registered for the duration of the solve and deregistered
    // by identity on the way out.
    let token = job
        .request
        .options
        .cancel
        .get_or_insert_with(CancelToken::new)
        .clone();
    shared
        .solving
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(token.clone());
    let result: BscResult<(Solution, Option<Arc<WindowSet>>)> = (|| {
        if delta_mode {
            let start = Instant::now();
            let outcome = bsc_core::delta::solve_windows(
                &job.snapshot,
                job.request.spec,
                job.request.k,
                job.request.algorithm,
                &job.request.options,
                prior.as_ref().map(|(set, delta)| (set.as_ref(), delta)),
            )?;
            let mut solution = outcome.solution;
            solution.stats.solve_micros = duration_micros(start.elapsed());
            Ok((solution, Some(Arc::new(outcome.windows))))
        } else {
            let mut solver = job.request.algorithm.build_with_options(
                job.request.spec,
                job.request.k,
                job.snapshot.num_intervals(),
                job.request.options.clone(),
            )?;
            let start = Instant::now();
            let mut solution = solver.solve_snapshot(&job.snapshot)?;
            solution.stats.solve_micros = duration_micros(start.elapsed());
            Ok((solution, None))
        }
    })();
    shared
        .solving
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .retain(|t| t != &token);
    let (mut solution, windows) = result?;
    // Cache the canonical form (no queue wait — that belongs to one query,
    // not to the answer), with the window set when the solve was windowed
    // so the next epoch can splice from it.
    shared.cache.lock().unwrap_or_else(|p| p.into_inner()).put(
        epoch,
        key,
        solution.clone(),
        windows,
    );
    solution.stats.queue_wait_micros = duration_micros(queue_wait);
    Ok(QueryResponse {
        solution,
        epoch,
        cached: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};

    fn graph(seed: u64) -> ClusterGraph {
        ClusterGraphGenerator::new(SyntheticGraphParams {
            num_intervals: 5,
            nodes_per_interval: 10,
            avg_out_degree: 3,
            gap: 1,
            seed,
        })
        .generate()
    }

    fn engine() -> QueryEngine {
        QueryEngine::new(EngineConfig::default().workers(2).cache_capacity(8)).unwrap()
    }

    #[test]
    fn answers_match_the_direct_solve() {
        let engine = engine();
        engine.install_graph(graph(7));
        let request = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 4);
        let response = engine.query(request).unwrap();
        assert_eq!(response.epoch, 1);
        assert!(!response.cached);
        assert!(response.solution.stats.solve_micros > 0);

        let mut direct = AlgorithmKind::Bfs
            .build(StableClusterSpec::ExactLength(2), 4, 5)
            .unwrap();
        let expected = direct.solve(&graph(7)).unwrap();
        assert_eq!(expected.paths.len(), response.solution.paths.len());
        for (a, b) in expected.paths.iter().zip(response.solution.paths.iter()) {
            assert_eq!(a.nodes(), b.nodes());
            assert_eq!(a.weight().to_bits(), b.weight().to_bits());
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache_until_the_epoch_swaps() {
        let engine = engine();
        engine.install_graph(graph(7));
        let request = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 4);
        let first = engine.query(request.clone()).unwrap();
        let second = engine.query(request.clone()).unwrap();
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(second.solution.stats.solve_micros, 0);
        for (a, b) in first
            .solution
            .paths
            .iter()
            .zip(second.solution.paths.iter())
        {
            assert_eq!(a.nodes(), b.nodes());
            assert_eq!(a.weight().to_bits(), b.weight().to_bits());
        }
        // Swap the graph: the cache must not serve the old answer.
        engine.install_graph(graph(8));
        let third = engine.query(request).unwrap();
        assert!(!third.cached);
        assert_eq!(third.epoch, 2);
        let stats = engine.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.cache.hits, 1);
        assert!(stats.cache.invalidations >= 1);
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let engine = engine();
        engine.install_graph(graph(7));
        let bad_k = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 0);
        assert!(matches!(
            engine.query(bad_k).unwrap_err(),
            BscError::InvalidConfig(_)
        ));
        let mismatch = QueryRequest::new(
            AlgorithmKind::Normalized,
            StableClusterSpec::ExactLength(2),
            3,
        );
        assert!(matches!(
            engine.query(mismatch).unwrap_err(),
            BscError::Unsupported { .. }
        ));
        // Graph-dependent failures surface through the ticket, not a panic.
        let ta_subpath = QueryRequest::new(AlgorithmKind::Ta, StableClusterSpec::ExactLength(1), 3);
        assert!(matches!(
            engine.query(ta_subpath).unwrap_err(),
            BscError::Unsupported {
                algorithm: "ta",
                ..
            }
        ));
        // Errors are counted but do not kill workers.
        assert_eq!(engine.stats().errors, 1);
        let ok = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 3);
        assert!(engine.query(ok).is_ok());
    }

    #[test]
    fn try_submit_sheds_load_when_the_queue_is_full() {
        // One worker, one queue slot: fill the pipeline with slow-ish
        // queries, then observe Saturated on the overflow.
        let engine = QueryEngine::new(
            EngineConfig::default()
                .workers(1)
                .queue_capacity(1)
                .cache_capacity(0),
        )
        .unwrap();
        engine.install_graph(graph(3));
        let request = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 4);
        let mut tickets = Vec::new();
        let mut saturated = false;
        for _ in 0..50 {
            match engine.try_submit(request.clone()) {
                Ok(ticket) => tickets.push(ticket),
                Err(BscError::Saturated { capacity }) => {
                    assert_eq!(capacity, 1);
                    saturated = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(saturated, "queue never filled");
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
    }

    #[test]
    fn an_expired_deadline_fails_fast_without_solving() {
        let engine = engine();
        engine.install_graph(graph(7));
        let request = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 4)
            .options(SolverOptions::default().deadline(Some(Duration::ZERO)));
        assert!(matches!(
            engine.query(request).unwrap_err(),
            BscError::DeadlineExceeded { .. }
        ));
        let stats = engine.stats();
        assert_eq!(stats.deadline_hits, 1);
        assert_eq!(stats.queue_expired, 1);
        // The query died in the queue: the solver never ran.
        assert_eq!(stats.solve.count(), 0);
        // A live deadline still solves normally.
        let request = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 4)
            .options(SolverOptions::default().deadline(Some(Duration::from_secs(60))));
        assert!(engine.query(request).is_ok());
    }

    #[test]
    fn submit_deadline_bounds_the_admission_wait() {
        // One worker, one queue slot: saturate the pipeline, then ask for
        // admission under a small budget and observe the bounded failure.
        let engine = QueryEngine::new(
            EngineConfig::default()
                .workers(1)
                .queue_capacity(1)
                .cache_capacity(0),
        )
        .unwrap();
        engine.install_graph(graph(3));
        let request = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 4);
        let mut tickets = Vec::new();
        loop {
            match engine.try_submit(request.clone()) {
                Ok(ticket) => tickets.push(ticket),
                Err(BscError::Saturated { .. }) => break,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let begun = Instant::now();
        let outcome = engine.submit_deadline(request.clone(), Duration::from_millis(20));
        // Either a slot freed inside the budget (ticket) or the wait was
        // bounded and reported as a deadline hit — never an unbounded block.
        match outcome {
            Ok(ticket) => drop(ticket),
            Err(BscError::DeadlineExceeded { .. }) => {
                assert!(begun.elapsed() >= Duration::from_millis(20));
                assert!(engine.stats().queue_expired >= 1);
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
        assert!(
            begun.elapsed() < Duration::from_secs(5),
            "wait was unbounded"
        );
        for ticket in tickets {
            let _ = ticket.wait();
        }
    }

    #[test]
    fn shutdown_cancels_in_flight_queries_promptly() {
        let mut engine = QueryEngine::new(
            EngineConfig::default()
                .workers(1)
                .queue_capacity(8)
                .cache_capacity(0),
        )
        .unwrap();
        engine.install_graph(graph(11));
        let request = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 4);
        let mut tickets = Vec::new();
        for _ in 0..6 {
            tickets.push(engine.try_submit(request.clone()).unwrap());
        }
        let begun = Instant::now();
        engine.shutdown();
        // Shutdown joins the workers; cooperative cancellation must make
        // that prompt even with a full queue behind the in-flight solve.
        assert!(begun.elapsed() < Duration::from_secs(10));
        for ticket in tickets {
            match ticket.wait() {
                Ok(_) => {}
                Err(BscError::DeadlineExceeded { .. }) | Err(BscError::Shutdown) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn shutdown_rejects_new_queries_and_joins_workers() {
        let mut engine = engine();
        engine.install_graph(graph(7));
        let request = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 4);
        assert!(engine.query(request.clone()).is_ok());
        engine.shutdown();
        assert!(matches!(
            engine.query(request).unwrap_err(),
            BscError::Shutdown
        ));
        engine.shutdown(); // idempotent
    }
}

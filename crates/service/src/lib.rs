//! # bsc-service
//!
//! The long-lived stable-cluster query service: the piece that turns the
//! one-shot solvers of [`bsc_core`] into an engine that serves many queries
//! over a resident, continuously refreshed cluster graph — the shape the
//! paper's online workload (and millions-of-users traffic) actually has.
//!
//! Three layers:
//!
//! * [`engine::QueryEngine`] — a fixed thread-pool executor over
//!   [`GraphSnapshot`](bsc_core::snapshot::GraphSnapshot)s: bounded
//!   two-lane admission ([`admission::AdmissionQueue`]; back-pressure via
//!   [`BscError::Saturated`], per-tenant token-bucket quotas, priority
//!   lanes with a starvation bound, and coalescing of concurrent same-key
//!   queries via [`batch`]), per-query
//!   [`SolverOptions`](bsc_core::solver::SolverOptions), any
//!   [`AlgorithmKind`](bsc_core::solver::AlgorithmKind) (including `Auto`
//!   and sharded), and an epoch-tagged LRU [`cache::SolutionCache`]
//!   invalidated on snapshot swap. Every answer is byte-identical to the
//!   one-shot `Pipeline::run` on the same graph.
//! * [`protocol`] — the std-only line-delimited JSON protocol (shared JSON
//!   implementation: [`bsc_util::json`]).
//! * [`session::Session`] — the stateful loop behind the `bsc serve`
//!   binary, with a reference **oracle** executor whose transcripts must be
//!   byte-identical to the engine's (CI diffs them).
//!
//! ```
//! use bsc_core::problem::StableClusterSpec;
//! use bsc_core::solver::AlgorithmKind;
//! use bsc_core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
//! use bsc_service::engine::{EngineConfig, QueryEngine, QueryRequest};
//!
//! let engine = QueryEngine::new(EngineConfig::default().workers(2)).unwrap();
//! let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
//!     num_intervals: 5,
//!     nodes_per_interval: 10,
//!     avg_out_degree: 3,
//!     gap: 1,
//!     seed: 7,
//! })
//! .generate();
//! engine.install_graph(graph);
//!
//! let response = engine
//!     .query(QueryRequest::new(
//!         AlgorithmKind::Bfs,
//!         StableClusterSpec::ExactLength(2),
//!         5,
//!     ))
//!     .unwrap();
//! assert_eq!(response.epoch, 1);
//! assert!(!response.solution.paths.is_empty());
//! ```
//!
//! [`BscError::Saturated`]: bsc_core::error::BscError::Saturated

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod cache;
pub mod engine;
pub mod protocol;
pub mod session;

pub use admission::AdmissionQueue;
pub use cache::{CacheStats, SolutionCache};
pub use engine::{
    EngineConfig, EngineStats, QueryEngine, QueryRequest, QueryResponse, QueryTicket, TenantQuota,
    TenantStats,
};
pub use session::Session;

//! `bsc` — the stable-cluster service binary.
//!
//! ```text
//! bsc serve  [--workers <n>] [--queue <n>] [--cache <n>]
//! bsc oracle
//! ```
//!
//! `bsc serve` runs the long-lived query engine behind the line-delimited
//! JSON protocol (see `docs/service.md`): one request object per stdin
//! line, one response object per stdout line, until `{"op":"shutdown"}` or
//! EOF. `--workers` sizes the fixed thread pool (default: the machine's
//! parallelism), `--queue` the bounded FIFO admission queue (default 64),
//! `--cache` the epoch-tagged solution cache (default 128, 0 disables).
//!
//! `bsc oracle` answers the same protocol with direct one-shot solves — no
//! pool, no queue, no cache. Deterministic responses of the two modes are
//! byte-identical, which CI asserts by diffing the transcripts of a
//! scripted session.

use std::io::{BufRead, Write};

use bsc_service::engine::EngineConfig;
use bsc_service::session::Session;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: bsc serve [--workers <n>] [--queue <n>] [--cache <n>] | bsc oracle");
    std::process::exit(2);
}

fn flag_value<'a>(iter: &mut impl Iterator<Item = &'a String>, flag: &str) -> usize {
    match iter.next().map(|v| v.parse::<usize>()) {
        Some(Ok(n)) => n,
        _ => usage_error(&format!("{flag} requires a non-negative integer")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut session = match args.first().map(String::as_str) {
        Some("oracle") => {
            if args.len() > 1 {
                usage_error("oracle takes no flags");
            }
            Session::oracle()
        }
        Some("serve") => {
            let mut config = EngineConfig::default();
            let mut iter = args[1..].iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--workers" => match flag_value(&mut iter, "--workers") {
                        0 => usage_error("--workers must be >= 1"),
                        n => config = config.workers(n),
                    },
                    "--queue" => match flag_value(&mut iter, "--queue") {
                        0 => usage_error("--queue must be >= 1"),
                        n => config = config.queue_capacity(n),
                    },
                    "--cache" => config = config.cache_capacity(flag_value(&mut iter, "--cache")),
                    other => usage_error(&format!("unknown flag '{other}'")),
                }
            }
            match Session::engine(config) {
                Ok(session) => session,
                Err(e) => usage_error(&format!("cannot start engine: {e}")),
            }
        }
        _ => usage_error("expected a subcommand: serve or oracle"),
    };

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("stdin read failed: {e}");
                std::process::exit(1);
            }
        };
        let (response, keep_going) = session.handle_line(&line);
        if let Some(response) = response {
            if writeln!(out, "{response}")
                .and_then(|()| out.flush())
                .is_err()
            {
                // Reader went away (e.g. `head`); exit quietly.
                std::process::exit(0);
            }
        }
        if !keep_going {
            break;
        }
    }
}

//! `bsc` — the stable-cluster service binary.
//!
//! ```text
//! bsc serve  [--workers <n>] [--queue <n>] [--cache <n>]
//!            [--quota-rate <n> --quota-burst <n>]
//! bsc serve  --worker <addr>
//! bsc serve  --coordinator --workers <addr,...> [--queue <n>] [--cache <n>]
//! bsc oracle
//! ```
//!
//! `bsc serve` runs the long-lived query engine behind the line-delimited
//! JSON protocol (see `docs/service.md`): one request object per stdin
//! line, one response object per stdout line, until `{"op":"shutdown"}` or
//! EOF. `--workers` sizes the fixed thread pool (default: the machine's
//! parallelism), `--queue` the bounded FIFO admission queue (default 64),
//! `--cache` the epoch-tagged solution cache (default 128, 0 disables).
//! `--quota-rate`/`--quota-burst` (both required together, both >= 1)
//! enable the per-tenant token-bucket quota: each tenant named in query
//! requests may sustain `rate` queries per second with bursts up to
//! `burst`; exceeding it sheds with `saturated` (see `docs/load.md`).
//!
//! `bsc serve --worker <addr>` turns the process into a **cluster worker**:
//! it binds a TCP listener on `<addr>` (port 0 picks a free port),
//! announces the bound address on stdout as one JSON line, and then
//! answers `solve_window` requests from a coordinator until killed. See
//! `docs/distributed.md`.
//!
//! `bsc serve --coordinator --workers <addr,...>` runs the same stdin
//! session as plain `serve`, but fans decomposable queries out to the
//! listed cluster workers (health-checked at startup; per-worker RPC
//! latency appears in the `stats` response). Because distributed answers
//! are byte-identical to local ones, the transcript is unchanged — CI
//! diffs it against single-process output.
//!
//! `bsc oracle` answers the same protocol with direct one-shot solves — no
//! pool, no queue, no cache. Deterministic responses of the two modes are
//! byte-identical, which CI asserts by diffing the transcripts of a
//! scripted session.

#![forbid(unsafe_code)]

use std::io::{BufRead, Write};

use bsc_core::distributed::FanoutSpec;
use bsc_service::engine::{EngineConfig, TenantQuota};
use bsc_service::session::Session;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!(
        "usage: bsc serve [--workers <n>] [--queue <n>] [--cache <n>]\n\
         \x20                [--quota-rate <n> --quota-burst <n>]\n\
         \x20      bsc serve --worker <addr>\n\
         \x20      bsc serve --coordinator --workers <addr,...> [--queue <n>] [--cache <n>]\n\
         \x20      bsc oracle"
    );
    std::process::exit(2);
}

fn flag_value<'a>(iter: &mut impl Iterator<Item = &'a String>, flag: &str) -> usize {
    match iter.next().map(|v| v.parse::<usize>()) {
        Some(Ok(n)) => n,
        _ => usage_error(&format!("{flag} requires a non-negative integer")),
    }
}

/// `bsc serve --worker <addr>`: run a cluster worker in the foreground.
fn run_worker(addr: &str) -> ! {
    let server = match bsc_cluster::WorkerServer::bind(addr, bsc_cluster::WorkerConfig::default()) {
        Ok(server) => server,
        Err(e) => usage_error(&format!("cannot bind worker on '{addr}': {e}")),
    };
    // Announce the bound address (port 0 resolves here) so scripts can
    // learn where to point the coordinator.
    println!(
        "{{\"addr\":\"{}\",\"ok\":true,\"op\":\"worker\",\"version\":{}}}",
        server.local_addr(),
        bsc_cluster::PROTOCOL_VERSION
    );
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Health-check the fan-out set, logging per worker; exit if none answer.
fn check_workers(fanout: &FanoutSpec) {
    let client = bsc_cluster::client_for(fanout);
    let health = client.health();
    for worker in &health {
        match &worker.error {
            None => eprintln!("worker {}: healthy", worker.addr),
            Some(e) => eprintln!("worker {}: UNHEALTHY ({e})", worker.addr),
        }
    }
    if health.iter().all(|w| !w.healthy) {
        eprintln!("no reachable workers in '{fanout}'");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut session = match args.first().map(String::as_str) {
        Some("oracle") => {
            if args.len() > 1 {
                usage_error("oracle takes no flags");
            }
            Session::oracle()
        }
        Some("serve") => {
            let rest = &args[1..];
            if rest.iter().any(|a| a == "--worker") {
                match rest {
                    [flag, addr] if flag == "--worker" => run_worker(addr),
                    _ => usage_error("--worker takes exactly one <addr> and no other flags"),
                }
            }
            let coordinator = rest.iter().any(|a| a == "--coordinator");
            let mut config = EngineConfig::default();
            let mut fanout: Option<FanoutSpec> = None;
            let mut quota_rate: Option<u64> = None;
            let mut quota_burst: Option<u64> = None;
            let mut iter = rest.iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--coordinator" => {}
                    // In coordinator mode `--workers` names the cluster
                    // worker addresses; otherwise it sizes the thread pool.
                    "--workers" if coordinator => match iter.next() {
                        Some(list) => match FanoutSpec::parse(list) {
                            Some(spec) => fanout = Some(spec),
                            None => usage_error(&format!(
                                "--workers requires a comma-separated address list, got '{list}'"
                            )),
                        },
                        None => usage_error("--workers requires an address list"),
                    },
                    "--workers" => match flag_value(&mut iter, "--workers") {
                        0 => usage_error("--workers must be >= 1"),
                        n => config = config.workers(n),
                    },
                    "--queue" => match flag_value(&mut iter, "--queue") {
                        0 => usage_error("--queue must be >= 1"),
                        n => config = config.queue_capacity(n),
                    },
                    "--cache" => config = config.cache_capacity(flag_value(&mut iter, "--cache")),
                    "--quota-rate" => match flag_value(&mut iter, "--quota-rate") {
                        0 => usage_error("--quota-rate must be >= 1"),
                        n => quota_rate = Some(n as u64),
                    },
                    "--quota-burst" => match flag_value(&mut iter, "--quota-burst") {
                        0 => usage_error("--quota-burst must be >= 1"),
                        n => quota_burst = Some(n as u64),
                    },
                    other => usage_error(&format!("unknown flag '{other}'")),
                }
            }
            match (quota_rate, quota_burst) {
                (Some(rate), Some(burst)) => {
                    config = config.quota(Some(TenantQuota::new(rate, burst)));
                }
                (None, None) => {}
                _ => usage_error("--quota-rate and --quota-burst must be given together"),
            }
            if coordinator {
                let Some(fanout) = fanout else {
                    usage_error("--coordinator requires --workers <addr,...>");
                };
                bsc_cluster::install_transport();
                check_workers(&fanout);
                match Session::engine(config) {
                    Ok(session) => session.default_fanout(Some(fanout)),
                    Err(e) => usage_error(&format!("cannot start engine: {e}")),
                }
            } else {
                match Session::engine(config) {
                    Ok(session) => session,
                    Err(e) => usage_error(&format!("cannot start engine: {e}")),
                }
            }
        }
        _ => usage_error("expected a subcommand: serve or oracle"),
    };

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("stdin read failed: {e}");
                std::process::exit(1);
            }
        };
        let (response, keep_going) = session.handle_line(&line);
        if let Some(response) = response {
            if writeln!(out, "{response}")
                .and_then(|()| out.flush())
                .is_err()
            {
                // Reader went away (e.g. `head`); exit quietly.
                std::process::exit(0);
            }
        }
        if !keep_going {
            break;
        }
    }
}

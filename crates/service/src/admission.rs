//! The engine's bounded, two-lane admission queue.
//!
//! PR 5's engine used a plain `mpsc::sync_channel` as its admission queue:
//! bounded, FIFO, and completely flat — a burst from one tenant's batch jobs
//! delayed every interactive query behind it. [`AdmissionQueue`] replaces it
//! with the minimal QoS structure the multi-tenant engine needs:
//!
//! * **Two priority lanes** ([`QueryPriority::High`] and
//!   [`QueryPriority::Normal`]), FIFO within each lane, sharing one bounded
//!   capacity (so back-pressure semantics — block, shed, or poll — are
//!   unchanged from the flat queue).
//! * **A deterministic starvation bound**: the high lane is preferred, but
//!   after [`HIGH_LANE_BURST`] consecutive high-lane pops one normal-lane
//!   item is served (when present). A normal-lane item with `w` items ahead
//!   of it in its lane is therefore dequeued within
//!   `(w + 1) * (HIGH_LANE_BURST + 1)` pops no matter how much high-priority
//!   traffic arrives.
//! * **Same-key draining** ([`AdmissionQueue::drain_matching`]): the seam
//!   the batched-execution path uses to coalesce queued queries that share a
//!   `(epoch, cache key)` with the one a worker just dequeued.
//!
//! The queue is a plain `Mutex` + `Condvar` over two `VecDeque`s — no
//! lock-free cleverness. Admission is never the hot path (solves dominate by
//! orders of magnitude); what matters here is that the policy is simple
//! enough to state exactly and test deterministically.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use bsc_core::solver::QueryPriority;

/// Consecutive high-lane pops allowed before a waiting normal-lane item is
/// served. This is the knob behind the starvation bound documented on
/// [`AdmissionQueue`]; it is a constant, not a config field, because the
/// bound's *existence* is the contract — tuning it has never mattered at the
/// queue depths the engine runs (≤ a few hundred).
pub const HIGH_LANE_BURST: usize = 4;

/// Why a push was refused, carrying the item back to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (shed or retry — the caller's choice).
    Full(T),
    /// The queue was closed by [`AdmissionQueue::close`]; it will never
    /// accept another item.
    Closed(T),
}

struct Lanes<T> {
    high: VecDeque<T>,
    normal: VecDeque<T>,
    /// Consecutive high-lane pops since the last normal-lane pop.
    high_streak: usize,
    closed: bool,
}

impl<T> Lanes<T> {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

/// A bounded two-lane priority queue. See the module docs for the policy.
pub struct AdmissionQueue<T> {
    lanes: Mutex<Lanes<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` items across both lanes.
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            lanes: Mutex::new(Lanes {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                high_streak: 0,
                closed: false,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// The shared capacity both lanes draw from.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Lanes<T>> {
        self.lanes.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueue without blocking: a full queue returns
    /// [`PushError::Full`] (back-pressure), a closed one
    /// [`PushError::Closed`] — both hand the item back.
    pub fn try_push(&self, item: T, priority: QueryPriority) -> Result<(), PushError<T>> {
        let mut lanes = self.locked();
        if lanes.closed {
            return Err(PushError::Closed(item));
        }
        if lanes.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        match priority {
            QueryPriority::High => lanes.high.push_back(item),
            QueryPriority::Normal => lanes.normal.push_back(item),
        }
        drop(lanes);
        self.cond.notify_all();
        Ok(())
    }

    /// Enqueue, blocking while the queue is full. Returns the item when the
    /// queue is (or becomes) closed.
    pub fn push_blocking(&self, item: T, priority: QueryPriority) -> Result<(), T> {
        let mut lanes = self.locked();
        while !lanes.closed && lanes.len() >= self.capacity {
            lanes = self.cond.wait(lanes).unwrap_or_else(|p| p.into_inner());
        }
        if lanes.closed {
            return Err(item);
        }
        match priority {
            QueryPriority::High => lanes.high.push_back(item),
            QueryPriority::Normal => lanes.normal.push_back(item),
        }
        drop(lanes);
        self.cond.notify_all();
        Ok(())
    }

    /// Dequeue the next item under the lane policy, blocking while the queue
    /// is empty and open. Returns `None` only when the queue is closed
    /// **and** drained — items enqueued before [`AdmissionQueue::close`]
    /// are still handed out afterwards, so workers can fail them fast
    /// instead of dropping them on the floor.
    pub fn pop(&self) -> Option<T> {
        let mut lanes = self.locked();
        loop {
            if lanes.len() > 0 {
                let item = Self::pop_policy(&mut lanes);
                drop(lanes);
                // A slot just freed: wake blocked pushers (and any other
                // poppers racing for remaining items).
                self.cond.notify_all();
                return item;
            }
            if lanes.closed {
                return None;
            }
            lanes = self.cond.wait(lanes).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The lane policy, applied to a non-empty queue: prefer the high lane,
    /// but serve the normal lane once every [`HIGH_LANE_BURST`] + 1 pops
    /// when it has a waiter.
    fn pop_policy(lanes: &mut Lanes<T>) -> Option<T> {
        let serve_normal = !lanes.normal.is_empty()
            && (lanes.high.is_empty() || lanes.high_streak >= HIGH_LANE_BURST);
        if serve_normal {
            lanes.high_streak = 0;
            lanes.normal.pop_front()
        } else {
            lanes.high_streak += 1;
            lanes.high.pop_front()
        }
    }

    /// Remove and return every queued item matching `pred`, FIFO within each
    /// lane, high lane first. This is the coalescing seam: the batch
    /// executor drains queued queries that share the dequeued leader's
    /// `(epoch, cache key)` and answers them from the leader's solve.
    pub fn drain_matching(&self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut lanes = self.locked();
        let mut drained = Vec::new();
        let lanes_mut = &mut *lanes;
        for lane in [&mut lanes_mut.high, &mut lanes_mut.normal] {
            let mut kept = VecDeque::with_capacity(lane.len());
            while let Some(item) = lane.pop_front() {
                if pred(&item) {
                    drained.push(item);
                } else {
                    kept.push_back(item);
                }
            }
            *lane = kept;
        }
        drop(lanes);
        if !drained.is_empty() {
            self.cond.notify_all();
        }
        drained
    }

    /// Close the queue: pushes start failing, poppers drain what is left
    /// and then read `None`. Idempotent.
    pub fn close(&self) {
        self.locked().closed = true;
        self.cond.notify_all();
    }

    /// True once [`AdmissionQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.locked().closed
    }

    /// Items currently queued across both lanes.
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(queue: &AdmissionQueue<u32>, item: u32, priority: QueryPriority) {
        queue
            .try_push(item, priority)
            .expect("push within capacity");
    }

    #[test]
    fn fifo_within_a_lane() {
        let queue = AdmissionQueue::new(8);
        for i in 0..4 {
            push(&queue, i, QueryPriority::Normal);
        }
        for i in 0..4 {
            assert_eq!(queue.pop(), Some(i));
        }
    }

    #[test]
    fn high_lane_is_served_first() {
        let queue = AdmissionQueue::new(8);
        push(&queue, 0, QueryPriority::Normal);
        push(&queue, 1, QueryPriority::High);
        push(&queue, 2, QueryPriority::High);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(0));
    }

    #[test]
    fn the_normal_lane_is_never_starved() {
        // Keep the high lane non-empty for the whole run; the normal item
        // must still surface within HIGH_LANE_BURST + 1 pops.
        let queue = AdmissionQueue::new(64);
        push(&queue, 999, QueryPriority::Normal);
        for i in 0..32 {
            push(&queue, i, QueryPriority::High);
        }
        let mut pops = 0;
        loop {
            pops += 1;
            if queue.pop() == Some(999) {
                break;
            }
            assert!(
                pops <= HIGH_LANE_BURST + 1,
                "normal-lane item starved for {pops} pops"
            );
        }
        assert_eq!(pops, HIGH_LANE_BURST + 1);
    }

    #[test]
    fn the_streak_resets_after_a_normal_pop() {
        let queue = AdmissionQueue::new(64);
        for i in 0..20 {
            push(&queue, i, QueryPriority::High);
        }
        push(&queue, 100, QueryPriority::Normal);
        push(&queue, 101, QueryPriority::Normal);
        let mut order = Vec::new();
        while let Some(item) = {
            if queue.is_empty() {
                None
            } else {
                queue.pop()
            }
        } {
            order.push(item);
        }
        // Exactly one normal item per HIGH_LANE_BURST high pops.
        let first_normal = order.iter().position(|&i| i == 100).unwrap();
        let second_normal = order.iter().position(|&i| i == 101).unwrap();
        assert_eq!(first_normal, HIGH_LANE_BURST);
        assert_eq!(second_normal, 2 * HIGH_LANE_BURST + 1);
    }

    #[test]
    fn capacity_is_shared_across_lanes() {
        let queue = AdmissionQueue::new(2);
        push(&queue, 0, QueryPriority::High);
        push(&queue, 1, QueryPriority::Normal);
        assert!(matches!(
            queue.try_push(2, QueryPriority::High),
            Err(PushError::Full(2))
        ));
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let queue = AdmissionQueue::new(8);
        push(&queue, 7, QueryPriority::Normal);
        queue.close();
        assert!(queue.is_closed());
        assert!(matches!(
            queue.try_push(8, QueryPriority::Normal),
            Err(PushError::Closed(8))
        ));
        assert_eq!(queue.push_blocking(9, QueryPriority::High), Err(9));
        assert_eq!(queue.pop(), Some(7));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn drain_matching_removes_across_lanes_high_first() {
        let queue = AdmissionQueue::new(16);
        push(&queue, 10, QueryPriority::Normal);
        push(&queue, 11, QueryPriority::Normal);
        push(&queue, 10, QueryPriority::High);
        push(&queue, 12, QueryPriority::High);
        let drained = queue.drain_matching(|&i| i == 10);
        assert_eq!(drained, vec![10, 10]);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(12));
        assert_eq!(queue.pop(), Some(11));
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let queue = std::sync::Arc::new(AdmissionQueue::new(4));
        let popper = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        push(&queue, 42, QueryPriority::Normal);
        assert_eq!(popper.join().unwrap(), Some(42));
    }

    #[test]
    fn push_blocking_waits_for_a_slot() {
        let queue = std::sync::Arc::new(AdmissionQueue::new(1));
        push(&queue, 1, QueryPriority::Normal);
        let pusher = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.push_blocking(2, QueryPriority::Normal))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(pusher.join().unwrap(), Ok(()));
        assert_eq!(queue.pop(), Some(2));
    }
}

//! The epoch-tagged LRU solution cache.
//!
//! Stable-cluster queries are pure functions of `(snapshot epoch, query
//! parameters)`: the same algorithm, spec, `k` and options against the same
//! graph always produce the byte-identical [`Solution`] (the workspace-wide
//! determinism invariant). That makes caching trivial to get right — the
//! only invalidation signal needed is the epoch. [`SolutionCache`] holds
//! solutions for exactly **one** epoch (the newest it has seen): a snapshot
//! swap advances the epoch and drops everything, so a stale answer can
//! never be served, and queries still running against older pinned epochs
//! simply bypass the cache rather than poison it.

use std::collections::HashMap;

use bsc_core::solver::Solution;

/// Counters describing cache behaviour since engine start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity (0 disables caching).
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including epoch mismatches).
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped by epoch advances (snapshot swaps).
    pub invalidations: u64,
}

#[derive(Debug)]
struct Entry {
    solution: Solution,
    last_used: u64,
}

/// A bounded LRU cache of query solutions, valid for a single epoch.
#[derive(Debug)]
pub struct SolutionCache {
    capacity: usize,
    /// The epoch every resident entry belongs to.
    epoch: u64,
    /// Monotone recency clock for the LRU policy.
    tick: u64,
    map: HashMap<String, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl SolutionCache {
    /// An empty cache holding at most `capacity` solutions (0 disables it).
    pub fn new(capacity: usize) -> Self {
        SolutionCache {
            capacity,
            epoch: 0,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Drop every entry belonging to an older epoch. Called on snapshot
    /// swap; also invoked lazily when a put arrives for a newer epoch.
    pub fn advance_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.invalidations += self.map.len() as u64;
            self.map.clear();
            self.epoch = epoch;
        }
    }

    /// Look up the solution for `key` computed at `epoch`. Counts a miss
    /// when absent or when the epoch does not match the resident one.
    pub fn get(&mut self, epoch: u64, key: &str) -> Option<Solution> {
        if epoch != self.epoch {
            self.misses += 1;
            return None;
        }
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.solution.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a solution computed at `epoch`. A put for a newer epoch first
    /// invalidates the older entries; a put for an *older* epoch (a query
    /// that pinned its snapshot before a swap) is dropped — the cache only
    /// ever answers for the newest epoch.
    pub fn put(&mut self, epoch: u64, key: String, solution: Solution) {
        if self.capacity == 0 {
            return;
        }
        self.advance_epoch(epoch);
        if epoch < self.epoch {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(
            key,
            Entry {
                solution,
                last_used: tick,
            },
        );
        if self.map.len() > self.capacity {
            if let Some(oldest) = self
                .map // bsc:allow(nondeterministic-iteration) -- ticks are unique, the min has one winner
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_core::cluster_graph::ClusterNodeId;
    use bsc_core::path::ClusterPath;
    use bsc_core::solver::SolverStats;
    use bsc_storage::io_stats::IoSnapshot;

    fn solution(weight: f64) -> Solution {
        Solution {
            paths: vec![ClusterPath::new(
                vec![ClusterNodeId::new(0, 0), ClusterNodeId::new(1, 0)],
                weight,
            )],
            stats: SolverStats::default(),
            io: IoSnapshot::default(),
        }
    }

    #[test]
    fn hit_after_put_same_epoch() {
        let mut cache = SolutionCache::new(4);
        assert!(cache.get(1, "q").is_none());
        cache.put(1, "q".into(), solution(0.5));
        let hit = cache.get(1, "q").expect("cached");
        assert_eq!(hit.paths[0].weight(), 0.5);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn epoch_advance_invalidates_everything() {
        let mut cache = SolutionCache::new(4);
        cache.put(1, "a".into(), solution(0.1));
        cache.put(1, "b".into(), solution(0.2));
        cache.advance_epoch(2);
        assert!(cache.get(2, "a").is_none());
        assert_eq!(cache.stats().invalidations, 2);
        assert_eq!(cache.stats().entries, 0);
        // A put for a newer epoch invalidates lazily too.
        cache.put(2, "a".into(), solution(0.3));
        cache.put(3, "c".into(), solution(0.4));
        assert!(cache.get(3, "a").is_none());
        assert!(cache.get(3, "c").is_some());
    }

    #[test]
    fn stale_epoch_lookups_and_puts_bypass_the_cache() {
        let mut cache = SolutionCache::new(4);
        cache.advance_epoch(5);
        // A query pinned at epoch 3 finishes after the swap to 5.
        cache.put(3, "old".into(), solution(0.9));
        assert!(cache.get(3, "old").is_none());
        assert!(cache.get(5, "old").is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut cache = SolutionCache::new(2);
        cache.put(1, "a".into(), solution(0.1));
        cache.put(1, "b".into(), solution(0.2));
        assert!(cache.get(1, "a").is_some()); // refresh "a"
        cache.put(1, "c".into(), solution(0.3)); // evicts "b"
        assert!(cache.get(1, "b").is_none());
        assert!(cache.get(1, "a").is_some());
        assert!(cache.get(1, "c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = SolutionCache::new(0);
        cache.put(1, "a".into(), solution(0.1));
        assert!(cache.get(1, "a").is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}

//! The epoch-tagged LRU solution cache with delta-aware carry-forward.
//!
//! Stable-cluster queries are pure functions of `(snapshot epoch, query
//! parameters)`: the same algorithm, spec, `k` and options against the same
//! graph always produce the byte-identical [`Solution`] (the workspace-wide
//! determinism invariant). That makes caching trivial to get right — the
//! only invalidation signal needed is the epoch. Every entry carries the
//! epoch it was computed at, and [`SolutionCache::get`] only ever answers
//! for an exact epoch match, so a stale answer can never be served.
//!
//! What changed with incremental solving (see [`bsc_core::delta`]): an
//! epoch advance no longer has to drop everything. Entries produced by a
//! windowed solve also hold their per-start [`WindowSet`]; on an
//! *incremental* advance ([`SolutionCache::advance_epoch_incremental`])
//! those entries are **carried forward** — their untouched windows are the
//! splice source that makes the next solve of the same key proportional to
//! the delta, found via [`SolutionCache::spliceable`]. Solution-only
//! entries are dropped as before (every global answer depends on the whole
//! graph, so any delta invalidates them); the `carried_forward` /
//! `delta_dropped` counters report the split. A plain (non-incremental)
//! advance still drops everything — without a delta chain in the
//! [`SnapshotCell`](bsc_core::snapshot::SnapshotCell) nothing could splice
//! anyway, and that chain (not the cache) is the correctness gate: a
//! carried entry is only ever used when the cell proves a composable delta
//! connects its epoch to the query's.

use std::collections::HashMap;
use std::sync::Arc;

use bsc_core::delta::WindowSet;
use bsc_core::solver::Solution;

/// Counters describing cache behaviour since engine start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity (0 disables caching).
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including epoch mismatches).
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped by epoch advances (snapshot swaps), including
    /// `delta_dropped`.
    pub invalidations: u64,
    /// Window-set entries carried across incremental epoch advances
    /// instead of being dropped — each is a future splice source.
    pub carried_forward: u64,
    /// Solution-only entries an incremental advance still had to drop.
    pub delta_dropped: u64,
}

#[derive(Debug)]
struct Entry {
    /// The epoch the solution was computed at.
    epoch: u64,
    solution: Solution,
    /// Per-start-window results when the solution came from a windowed
    /// solve; the splice source for later epochs.
    windows: Option<Arc<WindowSet>>,
    last_used: u64,
}

/// A bounded LRU cache of query solutions with per-entry epoch tags.
#[derive(Debug)]
pub struct SolutionCache {
    capacity: usize,
    /// The newest epoch the cache has been advanced to; puts for older
    /// epochs are dropped.
    epoch: u64,
    /// Monotone recency clock for the LRU policy.
    tick: u64,
    map: HashMap<String, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    carried_forward: u64,
    delta_dropped: u64,
}

impl SolutionCache {
    /// An empty cache holding at most `capacity` solutions (0 disables it).
    pub fn new(capacity: usize) -> Self {
        SolutionCache {
            capacity,
            epoch: 0,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
            carried_forward: 0,
            delta_dropped: 0,
        }
    }

    /// Drop every entry. Called on a plain snapshot swap: no delta links
    /// the generations, so nothing resident can ever be reused.
    pub fn advance_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.invalidations += self.map.len() as u64;
            self.map.clear();
            self.epoch = epoch;
        }
    }

    /// Advance to `epoch` keeping every window-set entry as a splice
    /// source (`carried_forward`); solution-only entries are dropped
    /// (`delta_dropped`) — a global answer depends on the whole graph, so
    /// any delta invalidates it, while a window set's untouched windows
    /// survive by construction. Called on an incremental snapshot install.
    pub fn advance_epoch_incremental(&mut self, epoch: u64) {
        if epoch <= self.epoch {
            return;
        }
        let before = self.map.len();
        // bsc:allow(nondeterministic-iteration) -- retain order only affects counter arithmetic, never output
        self.map.retain(|_, entry| entry.windows.is_some());
        let dropped = (before - self.map.len()) as u64;
        self.carried_forward += self.map.len() as u64;
        self.delta_dropped += dropped;
        self.invalidations += dropped;
        self.epoch = epoch;
    }

    /// Look up the solution for `key` computed at `epoch`. Counts a miss
    /// when absent or when the entry belongs to a different epoch (a
    /// carried-forward entry is a splice source, never a direct answer).
    pub fn get(&mut self, epoch: u64, key: &str) -> Option<Solution> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.solution.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// The window set a delta solve at `epoch` could splice from: a
    /// carried-forward entry for `key` computed at an **earlier** epoch.
    /// Returns that epoch and the shared window set; the caller must still
    /// obtain a composable delta covering `entry epoch → epoch` from the
    /// snapshot cell before splicing. Does not touch the hit/miss counters
    /// (the subsequent put records the outcome).
    pub fn spliceable(&mut self, epoch: u64, key: &str) -> Option<(u64, Arc<WindowSet>)> {
        self.tick += 1;
        let entry = self.map.get_mut(key)?;
        if entry.epoch >= epoch {
            return None;
        }
        let windows = entry.windows.as_ref()?;
        entry.last_used = self.tick;
        Some((entry.epoch, Arc::clone(windows)))
    }

    /// Store a solution computed at `epoch`, with its window set when the
    /// solve was windowed. A put for a newer epoch first advances the
    /// cache (incrementally — the snapshot cell's delta chain is the
    /// correctness gate for any later splice); a put for an *older* epoch
    /// (a query that pinned its snapshot before a swap) is dropped.
    pub fn put(
        &mut self,
        epoch: u64,
        key: String,
        solution: Solution,
        windows: Option<Arc<WindowSet>>,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.advance_epoch_incremental(epoch);
        if epoch < self.epoch {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(
            key,
            Entry {
                epoch,
                solution,
                windows,
                last_used: tick,
            },
        );
        if self.map.len() > self.capacity {
            if let Some(oldest) = self
                .map // bsc:allow(nondeterministic-iteration) -- ticks are unique, the min has one winner
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            carried_forward: self.carried_forward,
            delta_dropped: self.delta_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_core::cluster_graph::ClusterNodeId;
    use bsc_core::path::ClusterPath;
    use bsc_core::solver::SolverStats;
    use bsc_storage::io_stats::IoSnapshot;

    fn solution(weight: f64) -> Solution {
        Solution {
            paths: vec![ClusterPath::new(
                vec![ClusterNodeId::new(0, 0), ClusterNodeId::new(1, 0)],
                weight,
            )],
            stats: SolverStats::default(),
            io: IoSnapshot::default(),
        }
    }

    fn window_set() -> Arc<WindowSet> {
        Arc::new(WindowSet {
            l: 1,
            k: 1,
            windows: Vec::new(),
        })
    }

    #[test]
    fn hit_after_put_same_epoch() {
        let mut cache = SolutionCache::new(4);
        assert!(cache.get(1, "q").is_none());
        cache.put(1, "q".into(), solution(0.5), None);
        let hit = cache.get(1, "q").expect("cached");
        assert_eq!(hit.paths[0].weight(), 0.5);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn plain_epoch_advance_invalidates_everything() {
        let mut cache = SolutionCache::new(4);
        cache.put(1, "a".into(), solution(0.1), None);
        cache.put(1, "b".into(), solution(0.2), Some(window_set()));
        cache.advance_epoch(2);
        assert!(cache.get(2, "a").is_none());
        assert_eq!(cache.stats().invalidations, 2);
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.spliceable(2, "b").is_none());
    }

    #[test]
    fn incremental_advance_carries_window_entries_and_drops_the_rest() {
        let mut cache = SolutionCache::new(4);
        cache.put(1, "solution-only".into(), solution(0.1), None);
        cache.put(1, "windowed".into(), solution(0.2), Some(window_set()));
        cache.advance_epoch_incremental(2);
        let stats = cache.stats();
        assert_eq!(stats.carried_forward, 1);
        assert_eq!(stats.delta_dropped, 1);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 1);
        // The carried entry is a splice source, never a direct answer.
        assert!(cache.get(2, "windowed").is_none());
        let (from_epoch, windows) = cache.spliceable(2, "windowed").expect("carried");
        assert_eq!(from_epoch, 1);
        assert_eq!(windows.k, 1);
        // It is not spliceable at its own epoch.
        assert!(cache.spliceable(1, "windowed").is_none());
    }

    #[test]
    fn put_replaces_a_carried_entry_with_the_fresh_epoch() {
        let mut cache = SolutionCache::new(4);
        cache.put(1, "q".into(), solution(0.2), Some(window_set()));
        cache.advance_epoch_incremental(2);
        cache.put(2, "q".into(), solution(0.3), Some(window_set()));
        let hit = cache.get(2, "q").expect("fresh entry answers");
        assert_eq!(hit.paths[0].weight(), 0.3);
        assert!(cache.spliceable(2, "q").is_none());
        assert!(cache.spliceable(3, "q").is_some());
    }

    #[test]
    fn stale_epoch_lookups_and_puts_bypass_the_cache() {
        let mut cache = SolutionCache::new(4);
        cache.advance_epoch(5);
        // A query pinned at epoch 3 finishes after the swap to 5.
        cache.put(3, "old".into(), solution(0.9), None);
        assert!(cache.get(3, "old").is_none());
        assert!(cache.get(5, "old").is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut cache = SolutionCache::new(2);
        cache.put(1, "a".into(), solution(0.1), None);
        cache.put(1, "b".into(), solution(0.2), None);
        assert!(cache.get(1, "a").is_some()); // refresh "a"
        cache.put(1, "c".into(), solution(0.3), None); // evicts "b"
        assert!(cache.get(1, "b").is_none());
        assert!(cache.get(1, "a").is_some());
        assert!(cache.get(1, "c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = SolutionCache::new(0);
        cache.put(1, "a".into(), solution(0.1), None);
        assert!(cache.get(1, "a").is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}

//! Batched execution: coalescing same-epoch, same-key queries onto one solve.
//!
//! Under sustained load the admission queue routinely holds several copies
//! of the *same* query — Zipf-skewed traffic concentrates on a few hot
//! specs, and every copy would scan the same windows to produce the same
//! answer. The solution cache already collapses *sequential* repeats; this
//! module collapses *concurrent* ones: when a worker finishes a solve it
//! drains every queued query sharing the leader's `(epoch, cache key)`
//! ([`crate::admission::AdmissionQueue::drain_matching`]) and answers each
//! from a clone of the leader's solution.
//!
//! Correctness leans on two facts:
//!
//! * The cache key covers every parameter that can change the answer
//!   (`QueryRequest::cache_key`), and the epoch pins the snapshot — so a
//!   follower's serial execution would have produced a byte-identical
//!   `Solution`. Followers get clones, which makes "batched equals serial"
//!   structural rather than probabilistic; `tests/qos_admission.rs` checks
//!   it across algorithm × backend × shard count anyway.
//! * Only **token-less** queries coalesce (`coalescable`). Cancel tokens
//!   and deadlines are excluded from the cache key (they never change the
//!   answer), so two same-key queries can carry different budgets — a
//!   follower answered under its leader's token would inherit the wrong
//!   deadline behaviour. Token-less queries have no budget to misattribute.
//!
//! Bookkeeping per follower: its own queue wait is recorded, `solve_micros`
//! is 0 (nothing was solved on its behalf — the same convention cache hits
//! use), and the engine-wide `coalesced` counter increments. If the leader
//! *failed*, its error cannot be cloned (`BscError` is not `Clone`) and
//! followers deserve individual verdicts anyway, so each one re-executes
//! through the normal path — rare, and never worse than no batching.

use std::sync::atomic::Ordering;

use crate::admission::AdmissionQueue;
use crate::engine::{duration_micros, process_job, Job, JobOutcome, QueryResponse, Shared};

/// True when the job may participate in coalescing (as leader or
/// follower): it must carry no cancel token — see the module docs.
pub(crate) fn coalescable(job: &Job) -> bool {
    job.request.options.cancel.is_none()
}

/// Remove every queued job that could have been answered by the solve that
/// just finished: same snapshot epoch, same cache key, and itself
/// `coalescable`.
pub(crate) fn drain_followers(queue: &AdmissionQueue<Job>, epoch: u64, key: &str) -> Vec<Job> {
    queue.drain_matching(|job| job.snapshot.epoch() == epoch && job.key == key && coalescable(job))
}

/// Answer the drained followers from the leader's outcome: clones of the
/// leader's response on success, individual re-execution on failure (or
/// when shutdown tripped the leader's token mid-fan-out).
pub(crate) fn settle_followers(followers: Vec<Job>, leader: &JobOutcome, shared: &Shared) {
    if followers.is_empty() {
        return;
    }
    let token = leader.token.clone().unwrap_or_default();
    let mut tick = 0u32;
    for follower in followers {
        // The fan-out runs under the leader's token so an engine shutdown
        // keeps its promptness guarantee here too: once the token trips,
        // remaining followers fall through to process_job, which fails
        // them fast via the shutting_down flag instead of replying from a
        // cancelled solve.
        let interrupted = token.checkpoint(&mut tick);
        match (&leader.response, interrupted) {
            (Some(response), false) => reply_coalesced(follower, response, shared),
            _ => {
                process_job(follower, shared);
            }
        }
    }
}

/// Send one follower a clone of the leader's response, with the
/// follower's own queue wait and the cache-hit convention for
/// `solve_micros` (0 — no windows were scanned on its behalf).
fn reply_coalesced(follower: Job, response: &QueryResponse, shared: &Shared) {
    let queue_wait = follower.enqueued.elapsed();
    let mut solution = response.solution.clone();
    solution.stats.queue_wait_micros = duration_micros(queue_wait);
    solution.stats.solve_micros = 0;
    {
        let mut metrics = shared.metrics.lock().unwrap_or_else(|p| p.into_inner());
        metrics.queries += 1;
        metrics.coalesced += 1;
        metrics.queue_wait.record(queue_wait);
    }
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    let _ = follower.reply.send(Ok(QueryResponse {
        solution,
        epoch: response.epoch,
        cached: response.cached,
    }));
}

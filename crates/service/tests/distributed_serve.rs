//! Process-level distributed serving: real `bsc` binaries, real TCP.
//!
//! These tests spawn actual OS processes via `CARGO_BIN_EXE_bsc`:
//! cluster workers (`bsc serve --worker`), a coordinator
//! (`bsc serve --coordinator --workers …`) and the single-process
//! executors — and assert the coordinator's transcript is byte-identical
//! to theirs, including while a worker process is `kill`ed mid-session.
//! This is the same contract the CI `distributed` job checks from a shell
//! script; here it runs under plain `cargo test`.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

fn bsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bsc"))
}

/// The scripted session shared with the CI smoke job, from the workspace
/// root `tests/data/` directory.
fn session_script() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/service_session.jsonl"
    );
    std::fs::read_to_string(path).expect("session fixture")
}

/// A live worker process and the address it announced.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn() -> Worker {
        let mut child = bsc()
            .args(["serve", "--worker", "127.0.0.1:0"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn worker process");
        // The worker announces its bound address as its first stdout line.
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker announcement");
        let addr = line
            .split("\"addr\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_else(|| panic!("no addr in announcement: {line}"))
            .to_string();
        Worker { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Run one single-process executor (`serve` or `oracle`) over `input` and
/// return its transcript.
fn run_to_completion(args: &[&str], input: &str) -> String {
    let mut child = bsc()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bsc");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write session");
    let mut transcript = String::new();
    child
        .stdout
        .take()
        .expect("stdout")
        .read_to_string(&mut transcript)
        .expect("read transcript");
    assert!(child.wait().expect("wait").success());
    transcript
}

/// Tentpole acceptance at process level: a coordinator fanning out to
/// three worker processes replays the scripted session byte-identically
/// to plain `bsc serve` and to the `bsc oracle` reference.
#[test]
fn coordinator_transcript_is_byte_identical_to_single_process() {
    let workers: Vec<Worker> = (0..3).map(|_| Worker::spawn()).collect();
    let fanout = workers
        .iter()
        .map(|w| w.addr.as_str())
        .collect::<Vec<_>>()
        .join(",");
    let script = session_script();
    let distributed = run_to_completion(&["serve", "--coordinator", "--workers", &fanout], &script);
    let local = run_to_completion(&["serve"], &script);
    let oracle = run_to_completion(&["oracle"], &script);
    assert!(!distributed.is_empty());
    assert_eq!(distributed, local, "coordinator diverged from plain serve");
    assert_eq!(distributed, oracle, "coordinator diverged from the oracle");
}

/// Fault injection at process level: `kill -9` a worker mid-session. The
/// coordinator re-dispatches that worker's windows and the transcript is
/// still byte-identical to the oracle's.
#[test]
fn killing_a_worker_process_mid_session_preserves_the_transcript() {
    let mut workers: Vec<Worker> = (0..3).map(|_| Worker::spawn()).collect();
    let fanout = workers
        .iter()
        .map(|w| w.addr.as_str())
        .collect::<Vec<_>>()
        .join(",");

    let mut coordinator = bsc()
        .args(["serve", "--coordinator", "--workers", &fanout])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    let mut stdin = coordinator.stdin.take().expect("stdin");
    let mut stdout = BufReader::new(coordinator.stdout.take().expect("stdout"));
    let mut transcript = String::new();
    let mut drive = |line: &str, stdin: &mut std::process::ChildStdin| {
        writeln!(stdin, "{line}").expect("write request");
        let mut response = String::new();
        stdout.read_line(&mut response).expect("read response");
        assert!(!response.is_empty(), "coordinator hung on {line}");
        transcript.push_str(&response);
    };

    let preamble = [
        "{\"op\":\"hello\",\"version\":1}",
        "{\"op\":\"load\",\"num_intervals\":8,\"nodes_per_interval\":12,\"avg_out_degree\":3,\"gap\":1,\"seed\":7}",
        "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"exact:3\",\"k\":5}",
    ];
    for line in preamble {
        drive(line, &mut stdin);
    }

    // Kill a worker process outright, then keep querying: different spec
    // and k so the answers cannot come from the solution cache.
    workers[0].kill();
    let after_kill = [
        "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"exact:2\",\"k\":4}",
        "{\"op\":\"query\",\"algorithm\":\"dfs\",\"spec\":\"exact:4\",\"k\":6,\"storage\":\"memory\"}",
        "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"full\",\"k\":3}",
    ];
    for line in after_kill {
        drive(line, &mut stdin);
    }
    drive("{\"op\":\"shutdown\"}", &mut stdin);
    drop(stdin);
    assert!(coordinator.wait().expect("wait").success());

    let script: String = preamble
        .iter()
        .chain(after_kill.iter())
        .chain(["{\"op\":\"shutdown\"}"].iter())
        .map(|line| format!("{line}\n"))
        .collect();
    let oracle = run_to_completion(&["oracle"], &script);
    assert_eq!(
        transcript, oracle,
        "post-kill transcript diverged from the oracle"
    );
}

/// Protocol versioning: a mismatched `hello` fails fast — one clear error
/// response, then the session ends (later requests go unanswered).
#[test]
fn hello_version_mismatch_fails_fast() {
    for mode in [&["serve"][..], &["oracle"][..]] {
        let transcript = run_to_completion(
            mode,
            "{\"op\":\"hello\",\"version\":99}\n{\"op\":\"epoch\"}\n",
        );
        let lines: Vec<&str> = transcript.lines().collect();
        assert_eq!(
            lines.len(),
            1,
            "{mode:?}: session must end after the mismatch, got {transcript}"
        );
        assert!(lines[0].contains("\"ok\":false"), "{transcript}");
        assert!(
            lines[0].contains("protocol version mismatch"),
            "{transcript}"
        );
    }
}

/// A coordinator pointed at a dead worker set refuses to start (health
/// check), with a nonzero exit — misconfiguration is loud, not a hang.
#[test]
fn coordinator_with_no_reachable_workers_exits_nonzero() {
    // Bind-then-drop a listener to get a port that is real but dead.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let output = bsc()
        .args(["serve", "--coordinator", "--workers", &dead_addr])
        .stdin(Stdio::null())
        .output()
        .expect("run coordinator");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("no reachable workers"), "{stderr}");
}

//! Disk-backed keyed record store.
//!
//! The DFS stable-cluster algorithm (Algorithm 3) keeps, *on disk*, for every
//! cluster node: a visited flag, the `maxweight` table and the `bestpaths`
//! heaps. Whenever a node is pushed on the stack its state is read with one
//! random I/O, and when it is popped the state is written back with another.
//! [`NodeStore`] models exactly that access pattern: an append-only log file
//! plus an in-memory index from key to the offset of the latest version of
//! the record. Every `get` counts one seek and one read; every `put` counts
//! one write.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::hash::Hash;
use std::io::{Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

use crate::codec::{read_varint, write_varint, Decode, Encode};
use crate::{io_stats, Result, StorageError};

/// A disk-backed map from keys to encodable records with random access.
///
/// Updated records are appended (log-structured); the index always points at
/// the latest version. [`NodeStore::compact`] rewrites the log dropping stale
/// versions.
#[derive(Debug)]
pub struct NodeStore<K, V> {
    path: PathBuf,
    file: File,
    index: HashMap<K, (u64, u32)>,
    tail: u64,
    puts: u64,
    gets: u64,
    _marker: PhantomData<V>,
}

impl<K, V> NodeStore<K, V>
where
    K: Eq + Hash + Clone + Encode + Decode,
    V: Encode + Decode,
{
    /// Create a new, empty store backed by a file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(NodeStore {
            path,
            file,
            index: HashMap::new(),
            tail: 0,
            puts: 0,
            gets: 0,
            _marker: PhantomData,
        })
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of `put` operations performed (each is one logical write).
    pub fn put_count(&self) -> u64 {
        self.puts
    }

    /// Number of `get` operations performed (each is one seek + one read).
    pub fn get_count(&self) -> u64 {
        self.gets
    }

    /// Does the store contain `key`?
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Store (or replace) the record for `key`.
    pub fn put(&mut self, key: &K, value: &V) -> Result<()> {
        let mut payload = Vec::with_capacity(64);
        value.encode(&mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        write_varint(&mut frame, payload.len() as u64);
        frame.extend_from_slice(&payload);
        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(&frame)?;
        io_stats::global().record_write(frame.len() as u64);
        self.index
            .insert(key.clone(), (self.tail, payload.len() as u32));
        self.tail += frame.len() as u64;
        self.puts += 1;
        Ok(())
    }

    /// Fetch the record for `key`, or `None` if absent.
    pub fn get(&mut self, key: &K) -> Result<Option<V>> {
        let (offset, len) = match self.index.get(key) {
            Some(entry) => *entry,
            None => return Ok(None),
        };
        self.file.seek(SeekFrom::Start(offset))?;
        io_stats::global().record_seek();
        // Skip the length prefix: re-read it to find the payload start.
        let mut prefix = [0u8; 10];
        let to_read = prefix.len().min((self.tail - offset) as usize);
        self.file.read_exact(&mut prefix[..to_read])?;
        let mut slice: &[u8] = &prefix[..to_read];
        let stored_len = read_varint(&mut slice)? as usize;
        if stored_len != len as usize {
            return Err(StorageError::Corrupt(format!(
                "index length {len} does not match stored length {stored_len}"
            )));
        }
        let prefix_len = to_read - slice.len();
        self.file
            .seek(SeekFrom::Start(offset + prefix_len as u64))?;
        let mut payload = vec![0u8; stored_len];
        self.file.read_exact(&mut payload)?;
        io_stats::global().record_read(stored_len as u64);
        self.gets += 1;
        let mut slice = payload.as_slice();
        let value = V::decode(&mut slice)?;
        Ok(Some(value))
    }

    /// Fetch the record for `key`, returning an error if it is missing.
    pub fn get_required(&mut self, key: &K) -> Result<V>
    where
        K: std::fmt::Debug,
    {
        self.get(key)?
            .ok_or_else(|| StorageError::MissingKey(format!("{key:?}")))
    }

    /// All keys currently stored (unspecified order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.index.keys()
    }

    /// Rewrite the log keeping only the latest version of every record.
    /// Returns the number of bytes reclaimed.
    pub fn compact(&mut self) -> Result<u64> {
        let old_size = self.tail;
        let tmp_path = self.path.with_extension("compact");
        {
            let mut out = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp_path)?;
            let mut new_index = HashMap::with_capacity(self.index.len());
            let mut new_tail = 0u64;
            let keys: Vec<K> = self.index.keys().cloned().collect();
            for key in keys {
                let value = self.get(&key)?.expect("indexed key must exist");
                let mut payload = Vec::with_capacity(64);
                value.encode(&mut payload);
                let mut frame = Vec::with_capacity(payload.len() + 8);
                write_varint(&mut frame, payload.len() as u64);
                frame.extend_from_slice(&payload);
                out.write_all(&frame)?;
                io_stats::global().record_write(frame.len() as u64);
                new_index.insert(key, (new_tail, payload.len() as u32));
                new_tail += frame.len() as u64;
            }
            out.flush()?;
            self.index = new_index;
            self.tail = new_tail;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        Ok(old_size.saturating_sub(self.tail))
    }

    /// Size of the backing log in bytes (including stale versions).
    pub fn log_bytes(&self) -> u64 {
        self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    #[test]
    fn put_get_roundtrip() {
        let dir = TempDir::new("nodestore").unwrap();
        let mut store: NodeStore<u32, Vec<u64>> = NodeStore::create(dir.file("store.log")).unwrap();
        store.put(&1, &vec![10, 20, 30]).unwrap();
        store.put(&2, &vec![]).unwrap();
        assert_eq!(store.get(&1).unwrap(), Some(vec![10, 20, 30]));
        assert_eq!(store.get(&2).unwrap(), Some(vec![]));
        assert_eq!(store.get(&3).unwrap(), None);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn overwrite_returns_latest() {
        let dir = TempDir::new("nodestore").unwrap();
        let mut store: NodeStore<u32, String> = NodeStore::create(dir.file("s.log")).unwrap();
        store.put(&7, &"first".to_string()).unwrap();
        store.put(&7, &"second".to_string()).unwrap();
        assert_eq!(store.get(&7).unwrap(), Some("second".to_string()));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn get_required_errors_on_missing() {
        let dir = TempDir::new("nodestore").unwrap();
        let mut store: NodeStore<u32, u32> = NodeStore::create(dir.file("s.log")).unwrap();
        assert!(store.get_required(&42).is_err());
    }

    #[test]
    fn compact_reclaims_space_and_preserves_data() {
        let dir = TempDir::new("nodestore").unwrap();
        let mut store: NodeStore<u32, Vec<u32>> = NodeStore::create(dir.file("s.log")).unwrap();
        for round in 0..5u32 {
            for key in 0..20u32 {
                store.put(&key, &vec![round; 8]).unwrap();
            }
        }
        let before = store.log_bytes();
        let reclaimed = store.compact().unwrap();
        assert!(reclaimed > 0);
        assert!(store.log_bytes() < before);
        for key in 0..20u32 {
            assert_eq!(store.get(&key).unwrap(), Some(vec![4u32; 8]));
        }
    }

    #[test]
    fn io_counters_track_operations() {
        let dir = TempDir::new("nodestore").unwrap();
        let mut store: NodeStore<u32, u64> = NodeStore::create(dir.file("s.log")).unwrap();
        store.put(&1, &99).unwrap();
        let _ = store.get(&1).unwrap();
        assert_eq!(store.put_count(), 1);
        assert_eq!(store.get_count(), 1);
    }

    #[test]
    fn many_keys_random_access() {
        let dir = TempDir::new("nodestore").unwrap();
        let mut store: NodeStore<u64, (u64, f64)> = NodeStore::create(dir.file("s.log")).unwrap();
        for key in 0..500u64 {
            store.put(&key, &(key * 2, key as f64 / 7.0)).unwrap();
        }
        for key in (0..500u64).rev().step_by(7) {
            assert_eq!(store.get(&key).unwrap(), Some((key * 2, key as f64 / 7.0)));
        }
    }
}

//! Typed keyed record store over a pluggable [`StorageBackend`].
//!
//! The DFS stable-cluster algorithm (Algorithm 3) keeps, *on disk*, for every
//! cluster node: a visited flag, the `maxweight` table and the `bestpaths`
//! heaps. Whenever a node is pushed on the stack its state is read with one
//! random I/O, and when it is popped the state is written back with another.
//! [`NodeStore`] models exactly that access pattern as a typed map: keys and
//! values travel through the [`codec`](crate::codec) and land in whichever
//! [`StorageBackend`] the deployment selected via a
//! [`StorageSpec`] — the paper's append-only log
//! file, plain memory, or a budget-bounded block cache.

use std::marker::PhantomData;
use std::path::Path;

use crate::backend::{LogFileBackend, StorageBackend, StorageSpec};
use crate::codec::{Decode, Encode};
use crate::{Result, StorageError};

/// A typed map from keys to encodable records with random access, backed by
/// an exchangeable [`StorageBackend`].
///
/// Updated records replace prior versions logically; log-structured backends
/// append and keep stale bytes around until [`NodeStore::compact`] reclaims
/// them.
pub struct NodeStore<K, V> {
    backend: Box<dyn StorageBackend>,
    puts: u64,
    gets: u64,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K, V> std::fmt::Debug for NodeStore<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeStore")
            .field("backend", &self.backend.name())
            .field("len", &self.backend.len())
            .field("puts", &self.puts)
            .field("gets", &self.gets)
            .finish()
    }
}

impl<K, V> NodeStore<K, V>
where
    K: Encode + Decode,
    V: Encode + Decode,
{
    /// Wrap an existing backend.
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Self {
        NodeStore {
            backend,
            puts: 0,
            gets: 0,
            _marker: PhantomData,
        }
    }

    /// Create a store over the backend described by `spec`, with any scratch
    /// files living in a temporary directory owned by the backend.
    pub fn temp(spec: StorageSpec, prefix: &str) -> Result<Self> {
        Ok(Self::with_backend(spec.open_temp(prefix)?))
    }

    /// Create a new, empty log-file-backed store at `path` (the historical
    /// default backend).
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        Ok(Self::with_backend(Box::new(LogFileBackend::create(path)?)))
    }

    /// Reopen a log-file-backed store at `path`, rebuilding the index by
    /// scanning the log. A truncated tail is recovered by dropping the
    /// partial final record; structural corruption is an error.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Ok(Self::with_backend(Box::new(LogFileBackend::open(path)?)))
    }

    /// The underlying backend (for I/O accounting and diagnostics).
    pub fn backend(&self) -> &dyn StorageBackend {
        self.backend.as_ref()
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Number of `put` operations performed (each is one logical write).
    pub fn put_count(&self) -> u64 {
        self.puts
    }

    /// Number of `get` operations performed that found a record.
    pub fn get_count(&self) -> u64 {
        self.gets
    }

    /// Does the store contain `key`?
    pub fn contains(&self, key: &K) -> bool {
        self.backend.contains(&key.to_bytes())
    }

    /// Store (or replace) the record for `key`.
    pub fn put(&mut self, key: &K, value: &V) -> Result<()> {
        self.backend.put(&key.to_bytes(), &value.to_bytes())?;
        self.puts += 1;
        Ok(())
    }

    /// Fetch the record for `key`, or `None` if absent.
    pub fn get(&mut self, key: &K) -> Result<Option<V>> {
        let Some(payload) = self.backend.get(&key.to_bytes())? else {
            return Ok(None);
        };
        self.gets += 1;
        V::from_bytes(&payload).map(Some)
    }

    /// Fetch the record for `key`, returning an error if it is missing.
    pub fn get_required(&mut self, key: &K) -> Result<V>
    where
        K: std::fmt::Debug,
    {
        self.get(key)?
            .ok_or_else(|| StorageError::MissingKey(format!("{key:?}")))
    }

    /// Remove the record for `key`. Returns true when it was present.
    pub fn delete(&mut self, key: &K) -> Result<bool> {
        self.backend.delete(&key.to_bytes())
    }

    /// All keys currently stored (unspecified order), decoded.
    pub fn keys(&self) -> Result<Vec<K>> {
        self.backend
            .keys()
            .into_iter()
            .map(|bytes| K::from_bytes(&bytes))
            .collect()
    }

    /// Reclaim space held by stale record versions. Returns the number of
    /// bytes reclaimed (0 for backends that never hold stale data).
    pub fn compact(&mut self) -> Result<u64> {
        self.backend.compact()
    }

    /// Bytes occupied by the backing storage (including stale versions for
    /// log-structured backends).
    pub fn log_bytes(&self) -> u64 {
        self.backend.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    /// Run a test body once per backend kind.
    fn for_each_spec(test: impl Fn(StorageSpec)) {
        for spec in [
            StorageSpec::Memory,
            StorageSpec::LogFile,
            StorageSpec::BlockCache { budget_bytes: 512 },
        ] {
            test(spec);
        }
    }

    #[test]
    fn put_get_roundtrip_on_every_backend() {
        for_each_spec(|spec| {
            let mut store: NodeStore<u32, Vec<u64>> = NodeStore::temp(spec, "nodestore").unwrap();
            store.put(&1, &vec![10, 20, 30]).unwrap();
            store.put(&2, &vec![]).unwrap();
            assert_eq!(store.get(&1).unwrap(), Some(vec![10, 20, 30]), "{spec}");
            assert_eq!(store.get(&2).unwrap(), Some(vec![]), "{spec}");
            assert_eq!(store.get(&3).unwrap(), None, "{spec}");
            assert_eq!(store.len(), 2, "{spec}");
        });
    }

    #[test]
    fn overwrite_returns_latest_on_every_backend() {
        for_each_spec(|spec| {
            let mut store: NodeStore<u32, String> = NodeStore::temp(spec, "nodestore").unwrap();
            store.put(&7, &"first".to_string()).unwrap();
            store.put(&7, &"second".to_string()).unwrap();
            assert_eq!(store.get(&7).unwrap(), Some("second".to_string()), "{spec}");
            assert_eq!(store.len(), 1, "{spec}");
        });
    }

    #[test]
    fn get_required_errors_on_missing() {
        let mut store: NodeStore<u32, u32> = NodeStore::temp(StorageSpec::Memory, "ns").unwrap();
        assert!(store.get_required(&42).is_err());
    }

    #[test]
    fn delete_and_keys_roundtrip() {
        for_each_spec(|spec| {
            let mut store: NodeStore<u32, u32> = NodeStore::temp(spec, "nodestore").unwrap();
            for key in 0..10u32 {
                store.put(&key, &(key * key)).unwrap();
            }
            assert!(store.delete(&4).unwrap(), "{spec}");
            assert!(!store.delete(&4).unwrap(), "{spec}");
            let mut keys = store.keys().unwrap();
            keys.sort_unstable();
            assert_eq!(keys, vec![0, 1, 2, 3, 5, 6, 7, 8, 9], "{spec}");
        });
    }

    #[test]
    fn compact_reclaims_space_and_preserves_data() {
        // Only the log-structured backends accumulate stale versions.
        for spec in [
            StorageSpec::LogFile,
            StorageSpec::BlockCache { budget_bytes: 4096 },
        ] {
            let mut store: NodeStore<u32, Vec<u32>> = NodeStore::temp(spec, "nodestore").unwrap();
            for round in 0..5u32 {
                for key in 0..20u32 {
                    store.put(&key, &vec![round; 8]).unwrap();
                }
            }
            let before = store.log_bytes();
            let reclaimed = store.compact().unwrap();
            assert!(reclaimed > 0, "{spec}");
            assert!(store.log_bytes() < before, "{spec}");
            for key in 0..20u32 {
                assert_eq!(store.get(&key).unwrap(), Some(vec![4u32; 8]), "{spec}");
            }
        }
        // The memory backend never holds stale data: compaction is a no-op.
        let mut store: NodeStore<u32, u32> = NodeStore::temp(StorageSpec::Memory, "ns").unwrap();
        store.put(&1, &2).unwrap();
        store.put(&1, &3).unwrap();
        assert_eq!(store.compact().unwrap(), 0);
        assert_eq!(store.get(&1).unwrap(), Some(3));
    }

    #[test]
    fn compact_through_reopen_keeps_records_readable() {
        let dir = TempDir::new("nodestore-reopen").unwrap();
        let path = dir.file("s.log");
        {
            let mut store: NodeStore<u32, String> = NodeStore::create(&path).unwrap();
            for round in 0..3u32 {
                store.put(&1, &format!("round-{round}")).unwrap();
                store.put(&2, &"constant".to_string()).unwrap();
            }
            store.compact().unwrap();
        }
        let mut reopened: NodeStore<u32, String> = NodeStore::open(&path).unwrap();
        assert_eq!(reopened.get(&1).unwrap(), Some("round-2".to_string()));
        assert_eq!(reopened.get(&2).unwrap(), Some("constant".to_string()));
    }

    #[test]
    fn io_counters_track_operations() {
        let dir = TempDir::new("nodestore").unwrap();
        let mut store: NodeStore<u32, u64> = NodeStore::create(dir.file("s.log")).unwrap();
        store.put(&1, &99).unwrap();
        let _ = store.get(&1).unwrap();
        assert_eq!(store.put_count(), 1);
        assert_eq!(store.get_count(), 1);
        let io = store.backend().io_snapshot();
        assert!(io.write_ops >= 1 && io.read_ops >= 1);
    }

    #[test]
    fn many_keys_random_access() {
        for_each_spec(|spec| {
            let mut store: NodeStore<u64, (u64, f64)> = NodeStore::temp(spec, "nodestore").unwrap();
            for key in 0..500u64 {
                store.put(&key, &(key * 2, key as f64 / 7.0)).unwrap();
            }
            for key in (0..500u64).rev().step_by(7) {
                assert_eq!(
                    store.get(&key).unwrap(),
                    Some((key * 2, key as f64 / 7.0)),
                    "{spec}"
                );
            }
        });
    }
}

//! Pluggable storage backends for keyed byte records.
//!
//! The paper's disk-resident algorithms (the on-disk BFS variant and DFS,
//! Algorithm 3) keep per-node state in *secondary storage*. Which secondary
//! storage is a deployment decision — a log file on local disk, main memory
//! for tests and small graphs, or a bounded page cache that models the
//! paper's "limited main memory" regime — so the access pattern is abstracted
//! behind the object-safe [`StorageBackend`] trait and the typed
//! [`NodeStore`](crate::node_store::NodeStore) wraps whichever backend a
//! [`StorageSpec`] names.
//!
//! Three backends ship:
//!
//! * [`LogFileBackend`] — the append-only log + in-memory offset index that
//!   used to live inside `NodeStore`, extracted. Every `get` is one seek and
//!   one read, every `put` one sequential write, exactly the cost model the
//!   paper charges its disk-resident algorithms.
//! * [`InMemoryBackend`] — a `HashMap`, for tests and small-`m` runs. It
//!   performs no real I/O and therefore contributes nothing to the global
//!   [`io_stats`] counters; its [`StorageBackend::io_snapshot`] still counts
//!   logical record accesses.
//! * [`BlockCacheBackend`] — the log file behind a fixed-page LRU cache
//!   honoring a [`MemoryBudget`]: reads hit the cache when the page is
//!   resident and fall through to the disk (recorded as real I/O) when it is
//!   not. Evictions are visible in [`IoSnapshot::evictions`]. Shrinking the
//!   budget reproduces the paper's memory-limited experiments; growing it
//!   converges on in-memory behaviour while keeping the on-disk format.
//!
//! The log format is self-describing (`tag | key | value` frames), so a log
//! written by either file-backed backend can be reopened with
//! [`LogFileBackend::open`], which rebuilds the index by scanning and
//! recovers from a truncated tail by dropping the partial final record.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::codec::write_varint;
use crate::io_stats::{self, IoSnapshot, IoStats};
use crate::memory::MemoryBudget;
use crate::temp::TempDir;
use crate::{Result, StorageError};

/// An object-safe store of raw keyed byte records.
///
/// Implementations are updatable maps from byte keys to byte values with a
/// log-structured flavour: `put` replaces, `delete` removes, and
/// [`StorageBackend::compact`] reclaims space held by stale versions. All
/// accounting is observable through [`StorageBackend::io_snapshot`]; backends
/// that perform real file I/O additionally mirror it into the process-wide
/// [`io_stats::global`] counters so solver-level `IoScope` measurements keep
/// working unchanged.
pub trait StorageBackend: fmt::Debug + Send {
    /// A short, stable backend name (e.g. `"logfile"`).
    fn name(&self) -> &'static str;

    /// Fetch the latest value stored under `key`, or `None` if absent.
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Store (or replace) the value under `key`.
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Remove `key`. Returns true when the key was present.
    fn delete(&mut self, key: &[u8]) -> Result<bool>;

    /// Does the store contain `key`?
    fn contains(&self, key: &[u8]) -> bool;

    /// Number of distinct keys stored.
    fn len(&self) -> usize;

    /// True if the store holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All stored keys, in ascending byte order. Deterministic ordering
    /// here keeps everything downstream (dumps, fan-out shard manifests)
    /// byte-stable across backends and runs.
    fn keys(&self) -> Vec<Vec<u8>>;

    /// Reclaim space held by stale record versions and tombstones. Returns
    /// the number of bytes reclaimed (0 for backends that never hold stale
    /// data).
    fn compact(&mut self) -> Result<u64>;

    /// Bytes currently occupied by the backend's data, including stale
    /// versions not yet compacted away.
    fn storage_bytes(&self) -> u64;

    /// Snapshot of this backend's own I/O accounting. File-backed backends
    /// report real reads/writes/seeks (mirrored into the global counters);
    /// the in-memory backend reports logical record accesses only.
    fn io_snapshot(&self) -> IoSnapshot;
}

/// Which [`StorageBackend`] a disk-resident solver should use — the
/// deployment-level storage choice, threaded through `PipelineParams`,
/// `AlgorithmKind::build`, `BfsConfig` and `DfsConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageSpec {
    /// [`InMemoryBackend`]: no real I/O. For tests and small-`m` runs.
    Memory,
    /// [`LogFileBackend`]: the paper's append-only log + offset index.
    LogFile,
    /// [`BlockCacheBackend`]: the log file behind an LRU page cache bounded
    /// by a [`MemoryBudget`] of `budget_bytes` — the paper's limited-memory
    /// regime, tunable.
    BlockCache {
        /// Page-cache budget in bytes (advisory, enforced by eviction).
        budget_bytes: usize,
    },
    /// [`FaultInjectingBackend`](crate::fault::FaultInjectingBackend)
    /// wrapping `inner`: deterministic I/O errors and torn writes on a
    /// seed-reproducible schedule, for robustness conformance sweeps.
    Fault {
        /// Seed of the deterministic fault schedule.
        seed: u64,
        /// Mean fallible operations per injected fault (0 disables).
        every: u64,
        /// Which real backend sits under the fault layer.
        inner: FaultInner,
    },
}

/// The backend under a [`StorageSpec::Fault`] layer — the non-fault spec
/// shapes, kept as a separate enum so fault layers cannot nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultInner {
    /// [`InMemoryBackend`].
    Memory,
    /// [`LogFileBackend`].
    LogFile,
    /// [`BlockCacheBackend`] with this page-cache budget.
    BlockCache {
        /// Page-cache budget in bytes.
        budget_bytes: usize,
    },
}

impl FaultInner {
    /// The equivalent plain [`StorageSpec`].
    pub fn to_spec(self) -> StorageSpec {
        match self {
            FaultInner::Memory => StorageSpec::Memory,
            FaultInner::LogFile => StorageSpec::LogFile,
            FaultInner::BlockCache { budget_bytes } => StorageSpec::BlockCache { budget_bytes },
        }
    }

    /// The inverse of [`FaultInner::to_spec`]; `None` for a fault spec
    /// (fault layers cannot nest).
    pub fn from_spec(spec: StorageSpec) -> Option<FaultInner> {
        match spec {
            StorageSpec::Memory => Some(FaultInner::Memory),
            StorageSpec::LogFile => Some(FaultInner::LogFile),
            StorageSpec::BlockCache { budget_bytes } => {
                Some(FaultInner::BlockCache { budget_bytes })
            }
            StorageSpec::Fault { .. } => None,
        }
    }
}

impl StorageSpec {
    /// Default page-cache budget when none is given: 256 KiB.
    pub const DEFAULT_BLOCK_CACHE_BUDGET: usize = 256 * 1024;

    /// Every spec shape, with the default block-cache budget. Useful for
    /// conformance sweeps.
    pub const ALL: [StorageSpec; 3] = [
        StorageSpec::Memory,
        StorageSpec::LogFile,
        StorageSpec::BlockCache {
            budget_bytes: Self::DEFAULT_BLOCK_CACHE_BUDGET,
        },
    ];

    /// The spec's short name (`"memory"`, `"logfile"`, `"blockcache"`,
    /// `"fault"`).
    pub fn name(self) -> &'static str {
        match self {
            StorageSpec::Memory => "memory",
            StorageSpec::LogFile => "logfile",
            StorageSpec::BlockCache { .. } => "blockcache",
            StorageSpec::Fault { .. } => "fault",
        }
    }

    /// Parse a spec from its CLI / env-var form: `memory`, `logfile`,
    /// `blockcache` (default budget), `blockcache:<bytes>` or
    /// `fault:<seed>:<every>:<inner>` where `<inner>` is any non-fault
    /// spec (e.g. `fault:42:100:logfile`).
    pub fn parse(s: &str) -> Option<StorageSpec> {
        match s {
            "memory" => Some(StorageSpec::Memory),
            "logfile" => Some(StorageSpec::LogFile),
            "blockcache" => Some(StorageSpec::BlockCache {
                budget_bytes: Self::DEFAULT_BLOCK_CACHE_BUDGET,
            }),
            other => {
                if let Some(rest) = other.strip_prefix("fault:") {
                    let (seed, rest) = rest.split_once(':')?;
                    let (every, inner) = rest.split_once(':')?;
                    let seed = seed.parse().ok()?;
                    let every = every.parse().ok()?;
                    let inner = FaultInner::from_spec(StorageSpec::parse(inner)?)?;
                    return Some(StorageSpec::Fault { seed, every, inner });
                }
                let budget = other.strip_prefix("blockcache:")?;
                budget
                    .parse()
                    .ok()
                    .map(|budget_bytes| StorageSpec::BlockCache { budget_bytes })
            }
        }
    }

    /// Open a fresh backend of this kind whose scratch files (if any) live in
    /// a temporary directory owned by the backend itself — dropped with it.
    pub fn open_temp(self, prefix: &str) -> Result<Box<dyn StorageBackend>> {
        match self {
            StorageSpec::Memory => Ok(Box::new(InMemoryBackend::new())),
            StorageSpec::LogFile => Ok(Box::new(LogFileBackend::temp(prefix)?)),
            StorageSpec::BlockCache { budget_bytes } => {
                Ok(Box::new(BlockCacheBackend::temp(prefix, budget_bytes)?))
            }
            StorageSpec::Fault { seed, every, inner } => {
                let inner = inner.to_spec().open_temp(prefix)?;
                Ok(Box::new(crate::fault::FaultInjectingBackend::new(
                    inner, seed, every,
                )))
            }
        }
    }

    /// Create a fresh backend of this kind backed by an explicit log file at
    /// `path`, truncating anything already there ([`StorageSpec::Memory`]
    /// ignores the path).
    pub fn create_at<P: AsRef<Path>>(self, path: P) -> Result<Box<dyn StorageBackend>> {
        match self {
            StorageSpec::Memory => Ok(Box::new(InMemoryBackend::new())),
            StorageSpec::LogFile => Ok(Box::new(LogFileBackend::create(path)?)),
            StorageSpec::BlockCache { budget_bytes } => {
                Ok(Box::new(BlockCacheBackend::create(path, budget_bytes)?))
            }
            StorageSpec::Fault { seed, every, inner } => {
                let inner = inner.to_spec().create_at(path)?;
                Ok(Box::new(crate::fault::FaultInjectingBackend::new(
                    inner, seed, every,
                )))
            }
        }
    }

    /// Reopen an existing log at `path` with [`LogFileBackend::open`]'s
    /// index-rebuild and truncated-tail recovery semantics.
    /// [`StorageSpec::Memory`] has no persistent form and opens empty.
    pub fn open_at<P: AsRef<Path>>(self, path: P) -> Result<Box<dyn StorageBackend>> {
        match self {
            StorageSpec::Memory => Ok(Box::new(InMemoryBackend::new())),
            StorageSpec::LogFile => Ok(Box::new(LogFileBackend::open(path)?)),
            StorageSpec::BlockCache { budget_bytes } => {
                Ok(Box::new(BlockCacheBackend::open(path, budget_bytes)?))
            }
            StorageSpec::Fault { seed, every, inner } => {
                let inner = inner.to_spec().open_at(path)?;
                Ok(Box::new(crate::fault::FaultInjectingBackend::new(
                    inner, seed, every,
                )))
            }
        }
    }
}

impl fmt::Display for StorageSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageSpec::BlockCache { budget_bytes } => {
                write!(f, "blockcache:{budget_bytes}")
            }
            StorageSpec::Fault { seed, every, inner } => {
                write!(f, "fault:{seed}:{every}:{}", inner.to_spec())
            }
            other => f.write_str(other.name()),
        }
    }
}

// ---------------------------------------------------------------------------
// Log format
// ---------------------------------------------------------------------------

/// Frame tag: a key/value record.
const TAG_PUT: u8 = 1;
/// Frame tag: a tombstone (key deleted).
const TAG_DELETE: u8 = 2;

/// Encode one put frame, returning it together with the value payload's
/// offset *within the frame* (the caller adds the frame's file position).
fn put_frame(key: &[u8], value: &[u8]) -> (Vec<u8>, u64) {
    let mut frame = Vec::with_capacity(key.len() + value.len() + 12);
    frame.push(TAG_PUT);
    write_varint(&mut frame, key.len() as u64);
    frame.extend_from_slice(key);
    write_varint(&mut frame, value.len() as u64);
    let value_offset = frame.len() as u64;
    frame.extend_from_slice(value);
    (frame, value_offset)
}

/// Scan one varint off a sequential reader, advancing `consumed` by the
/// bytes taken. Decoding is delegated to [`codec::read_varint`] so the
/// recovery scanner can never drift from the codec's rules. `Ok(None)`
/// means the log ended mid-varint (a truncated tail); `Err` means the
/// varint itself is malformed.
fn scan_varint(reader: &mut impl Read, consumed: &mut u64) -> Result<Option<u64>> {
    // A u64 varint is at most ten bytes; collecting one byte more lets
    // read_varint surface its own overflow error for overlong input.
    let mut bytes = [0u8; 11];
    let mut n = 0;
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            other => other?,
        }
        bytes[n] = byte[0];
        n += 1;
        *consumed += 1;
        if byte[0] & 0x80 == 0 || n == bytes.len() {
            let mut slice = &bytes[..n];
            return crate::codec::read_varint(&mut slice).map(Some);
        }
    }
}

// ---------------------------------------------------------------------------
// Shared log-file core
// ---------------------------------------------------------------------------

/// The append-only log + offset index shared by [`LogFileBackend`] and
/// [`BlockCacheBackend`]. Owns its temp directory when created via `temp`,
/// so a backend's scratch files live and die with the backend.
#[derive(Debug)]
struct LogFileCore {
    path: PathBuf,
    file: File,
    /// key → (absolute offset of the value payload, value length).
    index: HashMap<Vec<u8>, (u64, u32)>,
    tail: u64,
    /// True when `open` found bytes past the last complete frame. The file
    /// is cut back to `tail` lazily, right before the first append — opening
    /// a log never destroys bytes on disk by itself.
    pending_truncate: bool,
    stats: Arc<IoStats>,
    _temp: Option<TempDir>,
}

impl LogFileCore {
    fn create(path: &Path, temp: Option<TempDir>) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(LogFileCore {
            path: path.to_path_buf(),
            file,
            index: HashMap::new(),
            tail: 0,
            pending_truncate: false,
            stats: Arc::new(IoStats::new()),
            _temp: temp,
        })
    }

    /// Reopen an existing log, rebuilding the index with one buffered
    /// sequential scan — memory stays bounded by the largest *key*, value
    /// payloads are skipped over. An incomplete final frame (crash
    /// mid-append, or a length field pointing past end-of-file) is recovered
    /// by ignoring everything past the last complete frame; the bytes are
    /// only physically cut back when the store is next appended to, so a
    /// read-only open never alters the file. Structural corruption within
    /// the scanned region (bad varint, unknown tag) is an error.
    fn open(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = file.metadata()?.len();
        let stats = Arc::new(IoStats::new());
        stats.record_read(file_len);
        io_stats::global().record_read(file_len);
        let mut index = HashMap::new();
        // End of the last complete frame; everything past it is a partial
        // tail to be dropped.
        let mut tail = 0u64;
        {
            let mut reader = std::io::BufReader::new(&mut file);
            let mut cursor = 0u64;
            loop {
                let mut tag = [0u8; 1];
                match reader.read_exact(&mut tag) {
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                    other => other?,
                }
                cursor += 1;
                if tag[0] != TAG_PUT && tag[0] != TAG_DELETE {
                    return Err(StorageError::Corrupt(format!(
                        "unknown record tag {} at offset {}",
                        tag[0],
                        cursor - 1
                    )));
                }
                let Some(key_len) = scan_varint(&mut reader, &mut cursor)? else {
                    break;
                };
                if file_len - cursor < key_len {
                    break; // truncated key
                }
                let mut key = vec![0u8; key_len as usize];
                reader.read_exact(&mut key)?;
                cursor += key_len;
                if tag[0] == TAG_DELETE {
                    index.remove(&key);
                    tail = cursor;
                    continue;
                }
                let Some(val_len) = scan_varint(&mut reader, &mut cursor)? else {
                    break;
                };
                if file_len - cursor < val_len {
                    break; // truncated value
                }
                let len = u32::try_from(val_len)
                    .map_err(|_| StorageError::Corrupt(format!("absurd value length {val_len}")))?;
                index.insert(key, (cursor, len));
                reader.seek_relative(val_len as i64)?;
                cursor += val_len;
                tail = cursor;
            }
        }
        Ok(LogFileCore {
            path: path.to_path_buf(),
            file,
            index,
            tail,
            pending_truncate: tail < file_len,
            stats,
            _temp: None,
        })
    }

    fn record_write(&self, bytes: u64) {
        self.stats.record_write(bytes);
        io_stats::global().record_write(bytes);
    }

    fn record_read(&self, bytes: u64) {
        self.stats.record_seek();
        self.stats.record_read(bytes);
        let global = io_stats::global();
        global.record_seek();
        global.record_read(bytes);
    }

    /// Append one frame; for puts, returns the value payload's (offset, len)
    /// which the caller must insert into the index.
    fn append(&mut self, key: &[u8], value: Option<&[u8]>) -> Result<Option<(u64, u32)>> {
        let (frame, entry) = match value {
            Some(value) => {
                let (frame, value_offset) = put_frame(key, value);
                let entry = (self.tail + value_offset, value.len() as u32);
                (frame, Some(entry))
            }
            None => {
                let mut frame = Vec::with_capacity(key.len() + 12);
                frame.push(TAG_DELETE);
                write_varint(&mut frame, key.len() as u64);
                frame.extend_from_slice(key);
                (frame, None)
            }
        };
        if self.pending_truncate {
            // Cut the unparseable tail found at open() time, so the append
            // lands on a frame boundary with nothing after it.
            self.file.set_len(self.tail)?;
            self.pending_truncate = false;
        }
        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(&frame)?;
        self.record_write(frame.len() as u64);
        self.tail += frame.len() as u64;
        Ok(entry)
    }

    /// Random read of `len` bytes at `offset`, with I/O accounting.
    fn read_at(&mut self, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        self.file.read_exact(&mut buf)?;
        self.record_read(len as u64);
        Ok(buf)
    }

    /// Rewrite the log keeping only the latest version of every live record,
    /// streamed one record at a time (sorted by key, so the output is
    /// deterministic).
    fn compact(&mut self) -> Result<u64> {
        let old_size = self.tail;
        let mut keys: Vec<Vec<u8>> = self.index.keys().cloned().collect();
        keys.sort_unstable();
        let tmp_path = self.path.with_extension("compact");
        {
            let mut out = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp_path)?;
            let mut new_index = HashMap::with_capacity(keys.len());
            let mut tail = 0u64;
            for key in keys {
                let (offset, len) = self.index[&key];
                let value = self.read_at(offset, len as usize)?;
                let (frame, value_offset) = put_frame(&key, &value);
                out.write_all(&frame)?;
                self.record_write(frame.len() as u64);
                new_index.insert(key, (tail + value_offset, len));
                tail += frame.len() as u64;
            }
            out.flush()?;
            self.index = new_index;
            self.tail = tail;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        // The rewrite replaced the file wholesale: no stale tail remains.
        self.pending_truncate = false;
        Ok(old_size.saturating_sub(self.tail))
    }
}

// ---------------------------------------------------------------------------
// LogFileBackend
// ---------------------------------------------------------------------------

/// The append-only log + in-memory offset index: one seek + one read per
/// `get`, one sequential write per `put` — the paper's disk cost model.
#[derive(Debug)]
pub struct LogFileBackend {
    core: LogFileCore,
}

impl LogFileBackend {
    /// Create a new, empty store backed by a file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        Ok(LogFileBackend {
            core: LogFileCore::create(path.as_ref(), None)?,
        })
    }

    /// Create a store whose log lives in a fresh temporary directory owned
    /// by the backend (removed when the backend is dropped).
    pub fn temp(prefix: &str) -> Result<Self> {
        let dir = TempDir::new(prefix)?;
        let path = dir.file("store.log");
        Ok(LogFileBackend {
            core: LogFileCore::create(&path, Some(dir))?,
        })
    }

    /// Reopen an existing log at `path`, rebuilding the index by scanning.
    /// Recovers from a truncated tail (the partial final record is dropped);
    /// structurally corrupt frames (bad varint, unknown tag) are an error.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Ok(LogFileBackend {
            core: LogFileCore::open(path.as_ref())?,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.core.path
    }
}

impl StorageBackend for LogFileBackend {
    fn name(&self) -> &'static str {
        "logfile"
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let Some(&(offset, len)) = self.core.index.get(key) else {
            return Ok(None);
        };
        self.core.read_at(offset, len as usize).map(Some)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let entry = self.core.append(key, Some(value))?;
        let Some(entry) = entry else {
            // append only returns None for tombstones; a put always carries
            // a value, so treat the impossible case as corruption.
            return Err(StorageError::Corrupt("put appended no entry".into()));
        };
        self.core.index.insert(key.to_vec(), entry);
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        if !self.core.index.contains_key(key) {
            return Ok(false);
        }
        // Tombstone first: if the append fails, index and log still agree.
        self.core.append(key, None)?;
        self.core.index.remove(key);
        Ok(true)
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.core.index.contains_key(key)
    }

    fn len(&self) -> usize {
        self.core.index.len()
    }

    fn keys(&self) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = self.core.index.keys().cloned().collect();
        keys.sort_unstable();
        keys
    }

    fn compact(&mut self) -> Result<u64> {
        self.core.compact()
    }

    fn storage_bytes(&self) -> u64 {
        self.core.tail
    }

    fn io_snapshot(&self) -> IoSnapshot {
        self.core.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// InMemoryBackend
// ---------------------------------------------------------------------------

/// A `HashMap` store: no real I/O, nothing mirrored into the global
/// counters. Its local [`StorageBackend::io_snapshot`] counts logical record
/// accesses so conformance tests can still assert monotone counters.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    map: HashMap<Vec<u8>, Vec<u8>>,
    resident_bytes: u64,
    stats: Arc<IoStats>,
}

impl InMemoryBackend {
    /// Create an empty in-memory store.
    pub fn new() -> Self {
        InMemoryBackend::default()
    }
}

impl StorageBackend for InMemoryBackend {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let value = self.map.get(key).cloned();
        if let Some(value) = &value {
            self.stats.record_read(value.len() as u64);
        }
        Ok(value)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.stats.record_write(value.len() as u64);
        self.resident_bytes += (key.len() + value.len()) as u64;
        if let Some(old) = self.map.insert(key.to_vec(), value.to_vec()) {
            self.resident_bytes -= (key.len() + old.len()) as u64;
        }
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        match self.map.remove(key) {
            Some(old) => {
                self.resident_bytes -= (key.len() + old.len()) as u64;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn keys(&self) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = self.map.keys().cloned().collect();
        keys.sort_unstable();
        keys
    }

    fn compact(&mut self) -> Result<u64> {
        // The map never holds stale versions.
        Ok(0)
    }

    fn storage_bytes(&self) -> u64 {
        self.resident_bytes
    }

    fn io_snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// BlockCacheBackend
// ---------------------------------------------------------------------------

/// Default page size of the block cache.
const DEFAULT_PAGE_SIZE: usize = 4096;

#[derive(Debug)]
struct CachedPage {
    data: Vec<u8>,
    last_used: u64,
}

/// The log file behind a fixed-size-page LRU cache bounded by a
/// [`MemoryBudget`] — the paper's "limited main memory" regime made tunable.
///
/// Reads are served from resident pages when possible; a miss fetches the
/// page with one real seek + read (mirrored into the global counters) and
/// caches it, evicting least-recently-used pages until the budget admits the
/// newcomer. Pages that cannot fit even after evicting everything are read
/// through without being cached, so the budget is genuinely respected.
/// Writes append to the log write-through; only the (partial) tail page can
/// be stale, and it is invalidated on every append.
#[derive(Debug)]
pub struct BlockCacheBackend {
    core: LogFileCore,
    page_size: usize,
    budget: Arc<MemoryBudget>,
    cache: HashMap<u64, CachedPage>,
    /// Recency index: `last_used` tick → page number. Ticks are unique
    /// (monotone counter), so the first entry is always the LRU page and
    /// eviction is O(log n) instead of a scan over every resident page.
    lru: BTreeMap<u64, u64>,
    tick: u64,
}

impl BlockCacheBackend {
    /// Create a block-cached store over a new log at `path` with a page-cache
    /// budget of `budget_bytes`.
    pub fn create<P: AsRef<Path>>(path: P, budget_bytes: usize) -> Result<Self> {
        Ok(Self::over(
            LogFileCore::create(path.as_ref(), None)?,
            budget_bytes,
        ))
    }

    /// Create a block-cached store whose log lives in a backend-owned
    /// temporary directory.
    pub fn temp(prefix: &str, budget_bytes: usize) -> Result<Self> {
        let dir = TempDir::new(prefix)?;
        let path = dir.file("store.log");
        Ok(Self::over(
            LogFileCore::create(&path, Some(dir))?,
            budget_bytes,
        ))
    }

    /// Reopen an existing log behind a fresh (cold) cache, with the same
    /// recovery semantics as [`LogFileBackend::open`].
    pub fn open<P: AsRef<Path>>(path: P, budget_bytes: usize) -> Result<Self> {
        Ok(Self::over(LogFileCore::open(path.as_ref())?, budget_bytes))
    }

    fn over(core: LogFileCore, budget_bytes: usize) -> Self {
        BlockCacheBackend {
            core,
            page_size: DEFAULT_PAGE_SIZE,
            budget: MemoryBudget::new(budget_bytes),
            cache: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
        }
    }

    /// Override the page size (mainly for tests that want eviction pressure
    /// without megabytes of data). Must be called before any reads.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        assert!(
            self.cache.is_empty(),
            "page size change requires a cold cache"
        );
        self.page_size = page_size;
        self
    }

    /// The cache's memory budget.
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Bytes currently resident in the page cache.
    pub fn cached_bytes(&self) -> usize {
        self.budget.used()
    }

    /// Evict the least-recently-used page, returning false when the cache is
    /// already empty.
    fn evict_one(&mut self) -> bool {
        let Some((&tick, &page_no)) = self.lru.first_key_value() else {
            return false;
        };
        self.lru.remove(&tick);
        let Some(page) = self.cache.remove(&page_no) else {
            // LRU and cache are updated together; nothing to release.
            return false;
        };
        self.budget.release(page.data.len());
        self.core.stats.record_eviction();
        io_stats::global().record_eviction();
        true
    }

    /// Drop the page containing `offset` (the stale tail page after an
    /// append). Not counted as an eviction: nothing was displaced by memory
    /// pressure, the page's cached bytes simply went out of date.
    fn invalidate_page_at(&mut self, offset: u64) {
        let page_no = offset / self.page_size as u64;
        if let Some(page) = self.cache.remove(&page_no) {
            self.lru.remove(&page.last_used);
            self.budget.release(page.data.len());
        }
    }

    /// Read `len` bytes at `offset` through the page cache.
    fn read_range(&mut self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let ps = self.page_size as u64;
        let end = offset + len as u64;
        let mut out = Vec::with_capacity(len);
        let mut page_no = offset / ps;
        while page_no * ps < end {
            let page_start = page_no * ps;
            let from = offset.max(page_start) - page_start;
            let to = end.min(page_start + ps) - page_start;
            self.tick += 1;
            let tick = self.tick;
            if let Some(page) = self.cache.get_mut(&page_no) {
                self.lru.remove(&page.last_used);
                self.lru.insert(tick, page_no);
                page.last_used = tick;
                let slice = page.data.get(from as usize..to as usize).ok_or_else(|| {
                    StorageError::Corrupt(format!(
                        "cached page {page_no} shorter than indexed record"
                    ))
                })?;
                out.extend_from_slice(slice);
            } else {
                let page_len = (ps.min(self.core.tail.saturating_sub(page_start))) as usize;
                let data = self.core.read_at(page_start, page_len)?;
                let slice = data.get(from as usize..to as usize).ok_or_else(|| {
                    StorageError::Corrupt(format!("page {page_no} shorter than indexed record"))
                })?;
                out.extend_from_slice(slice);
                self.maybe_cache(page_no, data, tick);
            }
            page_no += 1;
        }
        Ok(out)
    }

    /// Admit a freshly read page, evicting LRU pages until the budget allows
    /// it; if the budget cannot hold the page even with an empty cache, the
    /// page is simply not cached.
    fn maybe_cache(&mut self, page_no: u64, data: Vec<u8>, tick: u64) {
        while self.budget.would_exceed(data.len()) {
            if !self.evict_one() {
                return;
            }
        }
        self.budget.charge(data.len());
        self.lru.insert(tick, page_no);
        self.cache.insert(
            page_no,
            CachedPage {
                data,
                last_used: tick,
            },
        );
    }

    /// Drop every cached page (after a compaction rewrote the log).
    fn clear_cache(&mut self) {
        self.lru.clear();
        // bsc:allow(nondeterministic-iteration) -- releasing budget is commutative; order never escapes
        for (_, page) in self.cache.drain() {
            self.budget.release(page.data.len());
        }
    }
}

impl StorageBackend for BlockCacheBackend {
    fn name(&self) -> &'static str {
        "blockcache"
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let Some(&(offset, len)) = self.core.index.get(key) else {
            return Ok(None);
        };
        self.read_range(offset, len as usize).map(Some)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let old_tail = self.core.tail;
        let entry = self.core.append(key, Some(value))?;
        self.invalidate_page_at(old_tail);
        let Some(entry) = entry else {
            // append only returns None for tombstones; a put always carries
            // a value, so treat the impossible case as corruption.
            return Err(StorageError::Corrupt("put appended no entry".into()));
        };
        self.core.index.insert(key.to_vec(), entry);
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        if !self.core.index.contains_key(key) {
            return Ok(false);
        }
        let old_tail = self.core.tail;
        // Tombstone first: if the append fails, index and log still agree.
        self.core.append(key, None)?;
        self.invalidate_page_at(old_tail);
        self.core.index.remove(key);
        Ok(true)
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.core.index.contains_key(key)
    }

    fn len(&self) -> usize {
        self.core.index.len()
    }

    fn keys(&self) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = self.core.index.keys().cloned().collect();
        keys.sort_unstable();
        keys
    }

    fn compact(&mut self) -> Result<u64> {
        let reclaimed = self.core.compact()?;
        self.clear_cache();
        Ok(reclaimed)
    }

    fn storage_bytes(&self) -> u64 {
        self.core.tail
    }

    fn io_snapshot(&self) -> IoSnapshot {
        self.core.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One backend of every kind, block cache tuned for eviction pressure.
    fn all_backends() -> Vec<Box<dyn StorageBackend>> {
        vec![
            Box::new(InMemoryBackend::new()),
            Box::new(LogFileBackend::temp("backend-conf").unwrap()),
            Box::new(
                BlockCacheBackend::temp("backend-conf", 256)
                    .unwrap()
                    .with_page_size(64),
            ),
        ]
    }

    #[test]
    fn conformance_put_get_delete_compact() {
        for mut backend in all_backends() {
            let name = backend.name();
            assert!(backend.is_empty(), "{name}");
            backend.put(b"a", b"alpha").unwrap();
            backend.put(b"b", b"").unwrap();
            backend.put(b"a", b"alpha-2").unwrap();
            assert_eq!(
                backend.get(b"a").unwrap().as_deref(),
                Some(&b"alpha-2"[..]),
                "{name}"
            );
            assert_eq!(
                backend.get(b"b").unwrap().as_deref(),
                Some(&b""[..]),
                "{name}"
            );
            assert_eq!(backend.get(b"c").unwrap(), None, "{name}");
            assert_eq!(backend.len(), 2, "{name}");
            assert!(backend.contains(b"a") && !backend.contains(b"c"), "{name}");

            let mut keys = backend.keys();
            keys.sort();
            assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec()], "{name}");

            assert!(backend.delete(b"b").unwrap(), "{name}");
            assert!(!backend.delete(b"b").unwrap(), "{name}");
            assert_eq!(backend.get(b"b").unwrap(), None, "{name}");
            assert_eq!(backend.len(), 1, "{name}");

            backend.compact().unwrap();
            assert_eq!(
                backend.get(b"a").unwrap().as_deref(),
                Some(&b"alpha-2"[..]),
                "{name}: compact must preserve live data"
            );
        }
    }

    #[test]
    fn conformance_many_keys_random_access() {
        for mut backend in all_backends() {
            let name = backend.name();
            for i in 0..300u32 {
                backend
                    .put(&i.to_le_bytes(), format!("value-{i}").as_bytes())
                    .unwrap();
            }
            for i in (0..300u32).rev().step_by(7) {
                assert_eq!(
                    backend.get(&i.to_le_bytes()).unwrap(),
                    Some(format!("value-{i}").into_bytes()),
                    "{name} key {i}"
                );
            }
            assert_eq!(backend.len(), 300, "{name}");
        }
    }

    #[test]
    fn io_snapshot_counters_are_monotone() {
        for mut backend in all_backends() {
            let name = backend.name();
            let mut previous = backend.io_snapshot();
            for i in 0..50u32 {
                backend.put(&i.to_le_bytes(), &[0u8; 40]).unwrap();
                let _ = backend.get(&i.to_le_bytes()).unwrap();
                let snap = backend.io_snapshot();
                for (now, before) in [
                    (snap.read_ops, previous.read_ops),
                    (snap.write_ops, previous.write_ops),
                    (snap.seek_ops, previous.seek_ops),
                    (snap.bytes_read, previous.bytes_read),
                    (snap.bytes_written, previous.bytes_written),
                    (snap.evictions, previous.evictions),
                ] {
                    assert!(now >= before, "{name}: counter went backwards");
                }
                previous = snap;
            }
            assert!(previous.write_ops > 0, "{name}: puts must be accounted");
            assert!(previous.read_ops > 0, "{name}: gets must be accounted");
        }
    }

    #[test]
    fn log_files_reopen_with_index_rebuilt() {
        let dir = TempDir::new("backend-reopen").unwrap();
        let path = dir.file("store.log");
        {
            let mut backend = LogFileBackend::create(&path).unwrap();
            for i in 0..40u32 {
                backend.put(&i.to_le_bytes(), &[i as u8; 16]).unwrap();
            }
            backend.put(&7u32.to_le_bytes(), b"updated").unwrap();
            backend.delete(&3u32.to_le_bytes()).unwrap();
        }
        let mut reopened = LogFileBackend::open(&path).unwrap();
        assert_eq!(reopened.len(), 39);
        assert_eq!(
            reopened.get(&7u32.to_le_bytes()).unwrap().as_deref(),
            Some(&b"updated"[..])
        );
        assert_eq!(reopened.get(&3u32.to_le_bytes()).unwrap(), None);
        assert_eq!(
            reopened.get(&11u32.to_le_bytes()).unwrap(),
            Some(vec![11u8; 16])
        );
    }

    #[test]
    fn truncated_tail_is_recovered() {
        let dir = TempDir::new("backend-trunc").unwrap();
        let path = dir.file("store.log");
        let full_len;
        {
            let mut backend = LogFileBackend::create(&path).unwrap();
            backend.put(b"first", b"one").unwrap();
            backend.put(b"second", b"two").unwrap();
            full_len = backend.storage_bytes();
        }
        // Chop bytes off the final record: a crash mid-append.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 2).unwrap();
        drop(file);
        let mut recovered = LogFileBackend::open(&path).unwrap();
        assert_eq!(
            recovered.get(b"first").unwrap().as_deref(),
            Some(&b"one"[..])
        );
        assert_eq!(
            recovered.get(b"second").unwrap(),
            None,
            "the partial tail record must be dropped"
        );
        // Opening alone never alters the file: the unparseable tail is still
        // on disk until the store is written to.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            full_len - 2,
            "read-only recovery must not truncate"
        );
        // The store stays writable after recovery; the first append cuts the
        // partial tail so the log ends exactly at the new frame.
        recovered.put(b"third", b"three").unwrap();
        assert_eq!(
            recovered.get(b"third").unwrap().as_deref(),
            Some(&b"three"[..])
        );
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            recovered.storage_bytes(),
            "append after recovery must leave no trailing garbage"
        );
        // A second recovery round-trips cleanly.
        drop(recovered);
        let mut again = LogFileBackend::open(&path).unwrap();
        assert_eq!(again.get(b"first").unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(again.get(b"third").unwrap().as_deref(), Some(&b"three"[..]));
    }

    #[test]
    fn bad_varint_is_a_corrupt_error_not_a_panic() {
        let dir = TempDir::new("backend-badvarint").unwrap();
        let path = dir.file("store.log");
        // Tag byte then a varint of twelve continuation bytes: overflow (a
        // u64 varint is at most ten bytes).
        let mut bytes = vec![TAG_PUT];
        bytes.extend_from_slice(&[0xFF; 12]);
        std::fs::write(&path, &bytes).unwrap();
        match LogFileBackend::open(&path) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("varint"), "{msg}"),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        // An unknown tag is likewise structural corruption.
        std::fs::write(&path, [9u8, 0, 0]).unwrap();
        assert!(matches!(
            LogFileBackend::open(&path),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn block_cache_respects_budget_and_reports_evictions() {
        let mut backend = BlockCacheBackend::temp("backend-budget", 128)
            .unwrap()
            .with_page_size(32);
        for i in 0..100u32 {
            backend.put(&i.to_le_bytes(), &[i as u8; 24]).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(
                backend.get(&i.to_le_bytes()).unwrap(),
                Some(vec![i as u8; 24])
            );
        }
        assert!(
            backend.cached_bytes() <= 128,
            "cache must stay within its budget, used {}",
            backend.cached_bytes()
        );
        let snap = backend.io_snapshot();
        assert!(snap.evictions > 0, "a tiny budget must evict: {snap:?}");
    }

    #[test]
    fn block_cache_with_roomy_budget_reads_each_page_once() {
        let mut backend = BlockCacheBackend::temp("backend-roomy", 1 << 20).unwrap();
        for i in 0..50u32 {
            backend.put(&i.to_le_bytes(), &[i as u8; 32]).unwrap();
        }
        let after_writes = backend.io_snapshot();
        // Read everything twice: the second sweep must be pure cache hits.
        for _ in 0..2 {
            for i in 0..50u32 {
                assert_eq!(
                    backend.get(&i.to_le_bytes()).unwrap(),
                    Some(vec![i as u8; 32])
                );
            }
        }
        let after_reads = backend.io_snapshot().delta(&after_writes);
        assert_eq!(after_reads.evictions, 0);
        // All data fits in one 4 KiB page: exactly one real page fetch.
        assert_eq!(
            after_reads.read_ops, 1,
            "warm reads must not touch the disk: {after_reads:?}"
        );
    }

    #[test]
    fn block_cache_sees_its_own_appends() {
        // The tail page is invalidated on every append; interleaved put/get
        // must never serve stale bytes.
        let mut backend = BlockCacheBackend::temp("backend-stale", 4096)
            .unwrap()
            .with_page_size(64);
        for round in 0..20u8 {
            backend.put(b"k", &[round; 48]).unwrap();
            assert_eq!(
                backend.get(b"k").unwrap(),
                Some(vec![round; 48]),
                "round {round}"
            );
        }
    }

    #[test]
    fn spec_parse_and_display_roundtrip() {
        for spec in [
            StorageSpec::Memory,
            StorageSpec::LogFile,
            StorageSpec::BlockCache { budget_bytes: 777 },
            StorageSpec::Fault {
                seed: 42,
                every: 100,
                inner: FaultInner::LogFile,
            },
            StorageSpec::Fault {
                seed: 7,
                every: 3,
                inner: FaultInner::BlockCache { budget_bytes: 4096 },
            },
        ] {
            assert_eq!(StorageSpec::parse(&spec.to_string()), Some(spec));
        }
        assert_eq!(
            StorageSpec::parse("blockcache"),
            Some(StorageSpec::BlockCache {
                budget_bytes: StorageSpec::DEFAULT_BLOCK_CACHE_BUDGET
            })
        );
        assert_eq!(StorageSpec::parse("mmap"), None);
        assert_eq!(StorageSpec::parse("blockcache:big"), None);
        // Fault layers cannot nest, and malformed fault specs are rejected.
        assert_eq!(StorageSpec::parse("fault:1:2:fault:3:4:memory"), None);
        assert_eq!(StorageSpec::parse("fault:1:memory"), None);
        assert_eq!(StorageSpec::parse("fault:x:2:memory"), None);
    }

    #[test]
    fn spec_create_at_then_open_at_round_trips() {
        for spec in [
            StorageSpec::LogFile,
            StorageSpec::BlockCache { budget_bytes: 4096 },
        ] {
            let dir = TempDir::new("backend-spec-open").unwrap();
            let path = dir.file("store.log");
            {
                let mut backend = spec.create_at(&path).unwrap();
                backend.put(b"k", b"persisted").unwrap();
            }
            // open_at must *reopen* — never truncate — the existing log.
            let mut reopened = spec.open_at(&path).unwrap();
            assert_eq!(
                reopened.get(b"k").unwrap().as_deref(),
                Some(&b"persisted"[..]),
                "{spec}"
            );
            // And create_at must start fresh.
            let mut fresh = spec.create_at(&path).unwrap();
            assert_eq!(fresh.get(b"k").unwrap(), None, "{spec}");
        }
    }

    #[test]
    fn spec_open_temp_builds_working_backends() {
        for spec in StorageSpec::ALL {
            let mut backend = spec.open_temp("backend-spec").unwrap();
            assert_eq!(backend.name(), spec.name());
            backend.put(b"x", b"y").unwrap();
            assert_eq!(backend.get(b"x").unwrap().as_deref(), Some(&b"y"[..]));
        }
    }
}

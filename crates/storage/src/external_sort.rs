//! Bounded-memory external merge sort.
//!
//! Section 3 of the paper aggregates keyword pairs by writing every pair
//! occurrence to a file and sorting that file lexicographically "using
//! external memory merge sort" so that identical pairs become adjacent and
//! can be counted in a single pass. [`ExternalSorter`] implements exactly
//! that: it buffers records up to a memory budget, writes sorted runs to
//! spill files, and merges the runs with a k-way merge driven by a binary
//! heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;

use crate::codec::{Decode, Encode};
use crate::record_file::{RecordReader, RecordWriter};
use crate::temp::TempDir;
use crate::Result;

/// Configuration for an [`ExternalSorter`].
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Maximum number of records buffered in memory before a run is spilled.
    pub max_records_in_memory: usize,
    /// Maximum number of runs merged at once (fan-in). If more runs exist,
    /// intermediate merge passes are performed.
    pub merge_fan_in: usize,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            max_records_in_memory: 1 << 20,
            merge_fan_in: 64,
        }
    }
}

impl SortConfig {
    /// A configuration with a small in-memory buffer, useful for exercising
    /// the spill-and-merge paths in tests.
    pub fn tiny() -> Self {
        SortConfig {
            max_records_in_memory: 16,
            merge_fan_in: 3,
        }
    }
}

/// External merge sorter for records of type `T`.
///
/// ```
/// use bsc_storage::external_sort::{ExternalSorter, SortConfig};
///
/// let mut sorter: ExternalSorter<u32> = ExternalSorter::new(SortConfig::tiny()).unwrap();
/// for v in [5u32, 3, 9, 1, 1, 7] {
///     sorter.push(v).unwrap();
/// }
/// let sorted: Vec<u32> = sorter.finish().unwrap().collect::<Result<_, _>>().unwrap();
/// assert_eq!(sorted, vec![1, 1, 3, 5, 7, 9]);
/// ```
#[derive(Debug)]
pub struct ExternalSorter<T> {
    config: SortConfig,
    buffer: Vec<T>,
    runs: Vec<std::path::PathBuf>,
    spill_dir: TempDir,
    total_records: u64,
    _marker: PhantomData<T>,
}

impl<T: Encode + Decode + Ord> ExternalSorter<T> {
    /// Create a sorter with the given configuration.
    pub fn new(config: SortConfig) -> Result<Self> {
        let spill_dir = TempDir::new("bsc-extsort")?;
        Ok(ExternalSorter {
            buffer: Vec::with_capacity(config.max_records_in_memory.min(1 << 16)),
            config,
            runs: Vec::new(),
            spill_dir,
            total_records: 0,
            _marker: PhantomData,
        })
    }

    /// Add a record to be sorted.
    pub fn push(&mut self, record: T) -> Result<()> {
        self.buffer.push(record);
        self.total_records += 1;
        if self.buffer.len() >= self.config.max_records_in_memory {
            self.spill_run()?;
        }
        Ok(())
    }

    /// Total number of records pushed.
    pub fn len(&self) -> u64 {
        self.total_records
    }

    /// True if no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.total_records == 0
    }

    /// Number of runs spilled to disk so far.
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    fn spill_run(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.buffer.sort_unstable();
        let path = self.spill_dir.file(&format!("run-{}.rec", self.runs.len()));
        let mut writer = RecordWriter::create(&path)?;
        for record in self.buffer.drain(..) {
            writer.write(&record)?;
        }
        writer.finish()?;
        self.runs.push(path);
        Ok(())
    }

    /// Finish pushing records and return an iterator over them in sorted
    /// order.
    pub fn finish(mut self) -> Result<SortedIter<T>> {
        // If everything fit in memory, sort the buffer and avoid disk I/O.
        if self.runs.is_empty() {
            self.buffer.sort_unstable();
            let drained = std::mem::take(&mut self.buffer);
            return Ok(SortedIter::InMemory(drained.into_iter()));
        }
        self.spill_run()?;
        // Reduce the number of runs below the fan-in with intermediate passes.
        while self.runs.len() > self.config.merge_fan_in {
            let group: Vec<_> = self
                .runs
                .drain(..self.config.merge_fan_in.min(self.runs.len()))
                .collect();
            let merged_path = self
                .spill_dir
                .file(&format!("merge-{}.rec", self.runs.len() + group.len()));
            let mut writer: RecordWriter<T> = RecordWriter::create(&merged_path)?;
            let mut merge: KWayMerge<T> = KWayMerge::new(&group)?;
            while let Some(record) = merge.next_record()? {
                writer.write(&record)?;
            }
            writer.finish()?;
            for p in &group {
                let _ = std::fs::remove_file(p);
            }
            self.runs.push(merged_path);
        }
        let merge = KWayMerge::new(&self.runs)?;
        Ok(SortedIter::Merged {
            merge,
            _spill_dir: self.spill_dir,
        })
    }
}

/// Iterator over the sorted output of an [`ExternalSorter`].
pub enum SortedIter<T> {
    /// Everything fit in memory.
    InMemory(std::vec::IntoIter<T>),
    /// Streaming k-way merge over on-disk runs.
    Merged {
        /// The merge machinery.
        merge: KWayMerge<T>,
        /// Keeps the spill directory alive for the lifetime of the iterator.
        _spill_dir: TempDir,
    },
}

impl<T: Decode + Ord> Iterator for SortedIter<T> {
    type Item = Result<T>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            SortedIter::InMemory(iter) => iter.next().map(Ok),
            SortedIter::Merged { merge, .. } => merge.next_record().transpose(),
        }
    }
}

impl<T> std::fmt::Debug for SortedIter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortedIter::InMemory(_) => write!(f, "SortedIter::InMemory"),
            SortedIter::Merged { .. } => write!(f, "SortedIter::Merged"),
        }
    }
}

struct HeapEntry<T> {
    record: T,
    source: usize,
}

impl<T: Ord> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.record == other.record && self.source == other.source
    }
}
impl<T: Ord> Eq for HeapEntry<T> {}
impl<T: Ord> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.record
            .cmp(&other.record)
            .then(self.source.cmp(&other.source))
    }
}

/// Streaming k-way merge over sorted record files.
pub struct KWayMerge<T> {
    readers: Vec<RecordReader<T>>,
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
}

impl<T> std::fmt::Debug for KWayMerge<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KWayMerge({} inputs)", self.readers.len())
    }
}

impl<T: Decode + Ord> KWayMerge<T> {
    /// Open the given sorted run files and prime the merge heap.
    pub fn new<P: AsRef<std::path::Path>>(paths: &[P]) -> Result<Self> {
        let mut readers = Vec::with_capacity(paths.len());
        for path in paths {
            readers.push(RecordReader::open(path)?);
        }
        let mut heap = BinaryHeap::with_capacity(readers.len());
        for (source, reader) in readers.iter_mut().enumerate() {
            if let Some(record) = reader.read()? {
                heap.push(Reverse(HeapEntry { record, source }));
            }
        }
        Ok(KWayMerge { readers, heap })
    }

    /// Produce the next record in globally sorted order.
    pub fn next_record(&mut self) -> Result<Option<T>> {
        let Reverse(entry) = match self.heap.pop() {
            Some(e) => e,
            None => return Ok(None),
        };
        if let Some(next) = self.readers[entry.source].read()? {
            self.heap.push(Reverse(HeapEntry {
                record: next,
                source: entry.source,
            }));
        }
        Ok(Some(entry.record))
    }
}

/// Sort records and group identical consecutive ones, invoking `f` with each
/// distinct record and its multiplicity. This is the paper's "sort the pair
/// file, then count identical adjacent pairs" aggregation in one call.
pub fn sort_and_count<T, F>(sorter: ExternalSorter<T>, mut f: F) -> Result<()>
where
    T: Encode + Decode + Ord + Clone,
    F: FnMut(T, u64),
{
    let mut iter = sorter.finish()?;
    let mut current: Option<(T, u64)> = None;
    while let Some(record) = iter.next().transpose()? {
        match &mut current {
            Some((value, count)) if *value == record => *count += 1,
            Some((value, count)) => {
                f(value.clone(), *count);
                current = Some((record, 1));
            }
            None => current = Some((record, 1)),
        }
    }
    if let Some((value, count)) = current {
        f(value, count);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_util::DetRng;

    fn sort_via_external(values: Vec<(u32, u32)>, config: SortConfig) -> Vec<(u32, u32)> {
        let mut sorter = ExternalSorter::new(config).unwrap();
        for v in &values {
            sorter.push(*v).unwrap();
        }
        sorter
            .finish()
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap()
    }

    #[test]
    fn in_memory_path_sorts() {
        let values = vec![(3u32, 1u32), (1, 2), (2, 0), (1, 1)];
        let sorted = sort_via_external(values.clone(), SortConfig::default());
        let mut expected = values;
        expected.sort();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn spilled_path_sorts() {
        let values: Vec<(u32, u32)> = (0..200).map(|i| ((997 * i) % 101, i)).collect();
        let config = SortConfig::tiny();
        let mut sorter = ExternalSorter::new(config).unwrap();
        for v in &values {
            sorter.push(*v).unwrap();
        }
        assert!(sorter.spilled_runs() > 3, "expected multiple spill runs");
        let sorted: Vec<(u32, u32)> = sorter
            .finish()
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        let mut expected = values;
        expected.sort();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn empty_input() {
        let sorted = sort_via_external(vec![], SortConfig::tiny());
        assert!(sorted.is_empty());
    }

    #[test]
    fn sort_and_count_aggregates_duplicates() {
        let mut sorter: ExternalSorter<(u32, u32)> =
            ExternalSorter::new(SortConfig::tiny()).unwrap();
        for _ in 0..5 {
            sorter.push((1, 2)).unwrap();
        }
        for _ in 0..3 {
            sorter.push((0, 9)).unwrap();
        }
        sorter.push((7, 7)).unwrap();
        let mut counts = Vec::new();
        sort_and_count(sorter, |pair, count| counts.push((pair, count))).unwrap();
        assert_eq!(counts, vec![((0, 9), 3), ((1, 2), 5), ((7, 7), 1)]);
    }

    #[test]
    fn merge_fan_in_respected_with_many_runs() {
        let config = SortConfig {
            max_records_in_memory: 4,
            merge_fan_in: 2,
        };
        let values: Vec<(u32, u32)> = (0..100).map(|i| (100 - i, i)).collect();
        let sorted = sort_via_external(values.clone(), config);
        let mut expected = values;
        expected.sort();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn randomized_matches_in_memory_sort() {
        let mut rng = DetRng::seed_from_u64(200);
        for _ in 0..16 {
            let len = rng.index(300);
            let values: Vec<(u32, u32)> =
                (0..len).map(|_| (rng.next_u32(), rng.next_u32())).collect();
            let external = sort_via_external(values.clone(), SortConfig::tiny());
            let mut expected = values;
            expected.sort();
            assert_eq!(external, expected);
        }
    }

    #[test]
    fn randomized_count_totals_match() {
        let mut rng = DetRng::seed_from_u64(201);
        for _ in 0..16 {
            let len = rng.index(200);
            let values: Vec<u32> = (0..len).map(|_| rng.next_u32() % 10).collect();
            let mut sorter: ExternalSorter<u32> = ExternalSorter::new(SortConfig::tiny()).unwrap();
            for v in &values {
                sorter.push(*v).unwrap();
            }
            let mut total = 0u64;
            sort_and_count(sorter, |_, count| total += count).unwrap();
            assert_eq!(total, values.len() as u64);
        }
    }
}

//! Compact binary encoding for on-disk records.
//!
//! Every record written by the storage substrate — keyword pairs, graph
//! edges, per-node DFS state — goes through this hand-rolled codec rather
//! than a general-purpose serialization framework. Integers use LEB128-style
//! varints so that small ids (the common case for keyword and cluster ids)
//! occupy one or two bytes; floats are stored as fixed 8-byte little-endian
//! IEEE-754 values; strings and sequences are length-prefixed.

use crate::StorageError;

/// Pop one byte off the front of the cursor.
fn take_u8(buf: &mut &[u8], what: &str) -> Result<u8, StorageError> {
    let (&first, rest) = buf
        .split_first()
        .ok_or_else(|| StorageError::Corrupt(format!("truncated {what}")))?;
    *buf = rest;
    Ok(first)
}

/// Pop `N` bytes off the front of the cursor as a fixed-size array.
fn take_array<const N: usize>(buf: &mut &[u8], what: &str) -> Result<[u8; N], StorageError> {
    if buf.len() < N {
        return Err(StorageError::Corrupt(format!("truncated {what}")));
    }
    let (head, tail) = buf.split_at(N);
    *buf = tail;
    head.try_into()
        .map_err(|_| StorageError::Corrupt(format!("truncated {what}")))
}

/// Types that can be appended to a byte buffer.
pub trait Encode {
    /// Append the binary representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can be decoded from a byte slice cursor.
pub trait Decode: Sized {
    /// Decode a value from the front of `buf`, advancing the cursor.
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError>;

    /// Convenience: decode from a complete byte slice, requiring that every
    /// byte is consumed.
    fn from_bytes(mut bytes: &[u8]) -> Result<Self, StorageError> {
        let value = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after decode",
                bytes.len()
            )));
        }
        Ok(value)
    }
}

/// Write an unsigned LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
pub fn read_varint(buf: &mut &[u8]) -> Result<u64, StorageError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = take_u8(buf, "varint")?;
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflow".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// ZigZag-encode a signed integer so small magnitudes stay small.
fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, buf: &mut Vec<u8>) {
                    write_varint(buf, *self as u64);
                }
            }
            impl Decode for $ty {
                fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
                    let v = read_varint(buf)?;
                    <$ty>::try_from(v).map_err(|_| {
                        StorageError::Corrupt(format!("varint {v} out of range for {}", stringify!($ty)))
                    })
                }
            }
        )*
    };
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, buf: &mut Vec<u8>) {
                    write_varint(buf, zigzag(*self as i64));
                }
            }
            impl Decode for $ty {
                fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
                    let v = unzigzag(read_varint(buf)?);
                    <$ty>::try_from(v).map_err(|_| {
                        StorageError::Corrupt(format!("value {v} out of range for {}", stringify!($ty)))
                    })
                }
            }
        )*
    };
}

impl_signed!(i8, i16, i32, i64, isize);

impl Encode for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
}

impl Decode for f64 {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        Ok(f64::from_le_bytes(take_array(buf, "f64")?))
    }
}

impl Encode for f32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
}

impl Decode for f32 {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        Ok(f32::from_le_bytes(take_array(buf, "f32")?))
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        match take_u8(buf, "bool")? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_str().encode(buf);
    }
}

impl Encode for &str {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        let len = read_varint(buf)? as usize;
        if buf.len() < len {
            return Err(StorageError::Corrupt("truncated string".into()));
        }
        let (head, tail) = buf.split_at(len);
        let s = std::str::from_utf8(head)
            .map_err(|e| StorageError::Corrupt(format!("invalid utf8: {e}")))?
            .to_owned();
        *buf = tail;
        Ok(s)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        let len = read_varint(buf)? as usize;
        // Guard against absurd lengths from corrupted data before allocating.
        let cap = len.min(1 << 20);
        let mut out = Vec::with_capacity(cap);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        match take_u8(buf, "option")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            other => Err(StorageError::Corrupt(format!(
                "invalid option discriminant {other}"
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
                Ok(($($name::decode(buf)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_util::DetRng;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        let decoded = T::from_bytes(&bytes).expect("decode");
        assert_eq!(decoded, value);
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), 1, "value {v}");
        }
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0, 1, 127, 128, 255, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(read_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn truncated_varint_is_error() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut slice = buf.as_slice();
        assert!(read_varint(&mut slice).is_err());
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(42u32);
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-17i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("saddam hussein trial"));
        roundtrip(String::new());
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip(vec![1u32, 2, 3, 4]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(9u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u32, 2.5f64, String::from("iphone")));
        roundtrip(vec![(1u32, 2u32, 0.8f64), (3, 4, 0.1)]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(bool::from_bytes(&[7]).is_err());
    }

    #[test]
    fn out_of_range_unsigned_rejected() {
        let bytes = (300u64).to_bytes();
        assert!(u8::from_bytes(&bytes).is_err());
    }

    #[test]
    fn randomized_u64_roundtrip() {
        let mut rng = DetRng::seed_from_u64(100);
        for _ in 0..256 {
            roundtrip(rng.next_u64());
        }
    }

    #[test]
    fn randomized_i64_roundtrip() {
        let mut rng = DetRng::seed_from_u64(101);
        for _ in 0..256 {
            roundtrip(rng.next_u64() as i64);
        }
    }

    #[test]
    fn randomized_string_roundtrip() {
        let mut rng = DetRng::seed_from_u64(102);
        for _ in 0..128 {
            let len = rng.index(65);
            let s: String = (0..len)
                .map(|_| char::from_u32(rng.range_inclusive(0x20, 0x2FA1D_u64) as u32))
                .map(|c| c.unwrap_or('\u{FFFD}'))
                .collect();
            roundtrip(s);
        }
    }

    #[test]
    fn randomized_vec_tuple_roundtrip() {
        let mut rng = DetRng::seed_from_u64(103);
        for _ in 0..64 {
            let len = rng.index(32);
            let v: Vec<(u32, u32, f64)> = (0..len)
                .map(|_| (rng.next_u32(), rng.next_u32(), rng.next_f64()))
                .collect();
            roundtrip(v);
        }
    }

    #[test]
    fn randomized_f64_roundtrip() {
        let mut rng = DetRng::seed_from_u64(104);
        roundtrip(0.0f64);
        roundtrip(-0.0f64);
        for _ in 0..256 {
            let v = f64::from_bits(rng.next_u64());
            if v.is_nan() {
                continue;
            }
            roundtrip(v);
        }
    }

    #[test]
    fn randomized_zigzag_inverse() {
        let mut rng = DetRng::seed_from_u64(105);
        for v in [0i64, 1, -1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        for _ in 0..1024 {
            let v = rng.next_u64() as i64;
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}

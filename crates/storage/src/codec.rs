//! Compact binary encoding for on-disk records.
//!
//! Every record written by the storage substrate — keyword pairs, graph
//! edges, per-node DFS state — goes through this hand-rolled codec rather
//! than a general-purpose serialization framework. Integers use LEB128-style
//! varints so that small ids (the common case for keyword and cluster ids)
//! occupy one or two bytes; floats are stored as fixed 8-byte little-endian
//! IEEE-754 values; strings and sequences are length-prefixed.

use bytes::{Buf, BufMut};

use crate::StorageError;

/// Types that can be appended to a byte buffer.
pub trait Encode {
    /// Append the binary representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can be decoded from a byte slice cursor.
pub trait Decode: Sized {
    /// Decode a value from the front of `buf`, advancing the cursor.
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError>;

    /// Convenience: decode from a complete byte slice, requiring that every
    /// byte is consumed.
    fn from_bytes(mut bytes: &[u8]) -> Result<Self, StorageError> {
        let value = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after decode",
                bytes.len()
            )));
        }
        Ok(value)
    }
}

/// Write an unsigned LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
pub fn read_varint(buf: &mut &[u8]) -> Result<u64, StorageError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("truncated varint".into()));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflow".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// ZigZag-encode a signed integer so small magnitudes stay small.
fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, buf: &mut Vec<u8>) {
                    write_varint(buf, *self as u64);
                }
            }
            impl Decode for $ty {
                fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
                    let v = read_varint(buf)?;
                    <$ty>::try_from(v).map_err(|_| {
                        StorageError::Corrupt(format!("varint {v} out of range for {}", stringify!($ty)))
                    })
                }
            }
        )*
    };
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, buf: &mut Vec<u8>) {
                    write_varint(buf, zigzag(*self as i64));
                }
            }
            impl Decode for $ty {
                fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
                    let v = unzigzag(read_varint(buf)?);
                    <$ty>::try_from(v).map_err(|_| {
                        StorageError::Corrupt(format!("value {v} out of range for {}", stringify!($ty)))
                    })
                }
            }
        )*
    };
}

impl_signed!(i8, i16, i32, i64, isize);

impl Encode for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_f64_le(*self);
    }
}

impl Decode for f64 {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        if buf.len() < 8 {
            return Err(StorageError::Corrupt("truncated f64".into()));
        }
        Ok(buf.get_f64_le())
    }
}

impl Encode for f32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_f32_le(*self);
    }
}

impl Decode for f32 {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        if buf.len() < 4 {
            return Err(StorageError::Corrupt("truncated f32".into()));
        }
        Ok(buf.get_f32_le())
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("truncated bool".into()));
        }
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_str().encode(buf);
    }
}

impl Encode for &str {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        let len = read_varint(buf)? as usize;
        if buf.len() < len {
            return Err(StorageError::Corrupt("truncated string".into()));
        }
        let (head, tail) = buf.split_at(len);
        let s = std::str::from_utf8(head)
            .map_err(|e| StorageError::Corrupt(format!("invalid utf8: {e}")))?
            .to_owned();
        *buf = tail;
        Ok(s)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        let len = read_varint(buf)? as usize;
        // Guard against absurd lengths from corrupted data before allocating.
        let cap = len.min(1 << 20);
        let mut out = Vec::with_capacity(cap);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("truncated option".into()));
        }
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            other => Err(StorageError::Corrupt(format!(
                "invalid option discriminant {other}"
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(buf: &mut &[u8]) -> Result<Self, StorageError> {
                Ok(($($name::decode(buf)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        let decoded = T::from_bytes(&bytes).expect("decode");
        assert_eq!(decoded, value);
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), 1, "value {v}");
        }
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0, 1, 127, 128, 255, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(read_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn truncated_varint_is_error() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut slice = buf.as_slice();
        assert!(read_varint(&mut slice).is_err());
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(42u32);
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-17i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("saddam hussein trial"));
        roundtrip(String::new());
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip(vec![1u32, 2, 3, 4]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(9u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u32, 2.5f64, String::from("iphone")));
        roundtrip(vec![(1u32, 2u32, 0.8f64), (3, 4, 0.1)]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(bool::from_bytes(&[7]).is_err());
    }

    #[test]
    fn out_of_range_unsigned_rejected() {
        let bytes = (300u64).to_bytes();
        assert!(u8::from_bytes(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v in any::<u64>()) {
            roundtrip(v);
        }

        #[test]
        fn prop_i64_roundtrip(v in any::<i64>()) {
            roundtrip(v);
        }

        #[test]
        fn prop_string_roundtrip(s in ".{0,64}") {
            roundtrip(s);
        }

        #[test]
        fn prop_vec_tuple_roundtrip(v in proptest::collection::vec((any::<u32>(), any::<u32>(), 0.0f64..1.0), 0..32)) {
            roundtrip(v);
        }

        #[test]
        fn prop_f64_roundtrip(v in proptest::num::f64::NORMAL | proptest::num::f64::ZERO) {
            roundtrip(v);
        }

        #[test]
        fn prop_zigzag_inverse(v in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}

//! A stack that spills to disk beyond a memory budget.
//!
//! The biconnected-component algorithm (Algorithm 1) keeps edges on a stack;
//! the paper notes that "since the data structure in memory is a stack with
//! well defined access patterns, it can be efficiently paged to secondary
//! storage if its size exceeds available resources". [`PagedStack`] does
//! exactly that: the hot top of the stack lives in memory, and when the
//! in-memory portion exceeds a configurable number of entries the cold bottom
//! half is flushed to an on-disk page file in LIFO page order.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;

use crate::codec::{Decode, Encode};
use crate::temp::TempDir;
use crate::{io_stats, Result, StorageError};

/// A LIFO stack whose cold bottom spills to disk.
#[derive(Debug)]
pub struct PagedStack<T> {
    /// In-memory (hot) suffix of the stack; the logical top is at the back.
    hot: Vec<T>,
    /// Byte offsets (start, end) of spilled pages in the page file, in push
    /// order. The most recently spilled page is at the back.
    pages: Vec<(u64, u64)>,
    /// Number of elements per spilled page, aligned with `pages`.
    page_lens: Vec<usize>,
    file: Option<File>,
    spill_dir: Option<TempDir>,
    tail: u64,
    max_hot: usize,
    spill_batch: usize,
    total_len: usize,
    spills: u64,
    unspills: u64,
    _marker: PhantomData<T>,
}

impl<T: Encode + Decode> PagedStack<T> {
    /// Create a stack that keeps at most `max_hot` entries in memory.
    ///
    /// When the hot portion exceeds `max_hot`, the oldest half of the hot
    /// entries is written out as one page.
    pub fn new(max_hot: usize) -> Result<Self> {
        let max_hot = max_hot.max(2);
        Ok(PagedStack {
            hot: Vec::new(),
            pages: Vec::new(),
            page_lens: Vec::new(),
            file: None,
            spill_dir: None,
            tail: 0,
            max_hot,
            spill_batch: (max_hot / 2).max(1),
            total_len: 0,
            spills: 0,
            unspills: 0,
            _marker: PhantomData,
        })
    }

    /// A stack that never spills (purely in-memory).
    pub fn unbounded() -> Self {
        PagedStack {
            hot: Vec::new(),
            pages: Vec::new(),
            page_lens: Vec::new(),
            file: None,
            spill_dir: None,
            tail: 0,
            max_hot: usize::MAX,
            spill_batch: 1,
            total_len: 0,
            spills: 0,
            unspills: 0,
            _marker: PhantomData,
        }
    }

    /// Number of elements on the stack.
    pub fn len(&self) -> usize {
        self.total_len
    }

    /// True if the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.total_len == 0
    }

    /// Number of pages spilled to disk over the lifetime of the stack.
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    /// Number of pages read back from disk over the lifetime of the stack.
    pub fn unspill_count(&self) -> u64 {
        self.unspills
    }

    /// Push a value on the stack.
    pub fn push(&mut self, value: T) -> Result<()> {
        self.hot.push(value);
        self.total_len += 1;
        if self.hot.len() > self.max_hot {
            self.spill()?;
        }
        Ok(())
    }

    /// Pop the top value, or `None` if the stack is empty.
    pub fn pop(&mut self) -> Result<Option<T>> {
        if self.hot.is_empty() {
            self.unspill()?;
        }
        match self.hot.pop() {
            Some(value) => {
                self.total_len -= 1;
                Ok(Some(value))
            }
            None => Ok(None),
        }
    }

    /// Peek at the top value without removing it.
    pub fn peek(&mut self) -> Result<Option<&T>> {
        if self.hot.is_empty() {
            self.unspill()?;
        }
        Ok(self.hot.last())
    }

    fn ensure_file(&mut self) -> Result<()> {
        if self.file.is_none() {
            let dir = TempDir::new("bsc-pagedstack")?;
            let path = dir.file("stack.pages");
            let file = OpenOptions::new()
                .create(true)
                .read(true)
                .write(true)
                .truncate(true)
                .open(path)?;
            self.file = Some(file);
            self.spill_dir = Some(dir);
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        self.ensure_file()?;
        let spill_count = self.spill_batch.min(self.hot.len());
        if spill_count == 0 {
            return Ok(());
        }
        // Spill the *bottom* (oldest) part of the hot vector as one page,
        // preserving order so that unspilling restores LIFO semantics.
        let cold: Vec<T> = self.hot.drain(..spill_count).collect();
        let mut payload = Vec::with_capacity(64 * cold.len());
        for item in &cold {
            item.encode(&mut payload);
        }
        let file = match self.file.as_mut() {
            Some(file) => file,
            // ensure_file ran before any spill; a missing handle here means
            // a logic error upstream — surface it as an I/O error.
            None => return Err(StorageError::Corrupt("spill file not open".into())),
        };
        file.seek(SeekFrom::Start(self.tail))?;
        file.write_all(&payload)?;
        io_stats::global().record_write(payload.len() as u64);
        let start = self.tail;
        self.tail += payload.len() as u64;
        self.pages.push((start, self.tail));
        self.page_lens.push(cold.len());
        self.spills += 1;
        Ok(())
    }

    fn unspill(&mut self) -> Result<()> {
        let (range, count) = match (self.pages.pop(), self.page_lens.pop()) {
            (Some(range), Some(count)) => (range, count),
            _ => return Ok(()),
        };
        let file = self.file.as_mut().ok_or_else(|| {
            StorageError::Corrupt("paged stack has pages but no spill file".into())
        })?;
        let len = (range.1 - range.0) as usize;
        file.seek(SeekFrom::Start(range.0))?;
        io_stats::global().record_seek();
        let mut payload = vec![0u8; len];
        file.read_exact(&mut payload)?;
        io_stats::global().record_read(len as u64);
        let mut slice = payload.as_slice();
        let mut restored = Vec::with_capacity(count);
        for _ in 0..count {
            restored.push(T::decode(&mut slice)?);
        }
        if !slice.is_empty() {
            return Err(StorageError::Corrupt(
                "trailing bytes in paged stack page".into(),
            ));
        }
        // The restored page is older than anything currently hot, so it goes
        // underneath the current hot elements.
        restored.append(&mut self.hot);
        self.hot = restored;
        self.tail = range.0;
        self.unspills += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsc_util::DetRng;

    #[test]
    fn lifo_order_without_spilling() {
        let mut stack: PagedStack<u32> = PagedStack::unbounded();
        for i in 0..10 {
            stack.push(i).unwrap();
        }
        for i in (0..10).rev() {
            assert_eq!(stack.pop().unwrap(), Some(i));
        }
        assert!(stack.pop().unwrap().is_none());
    }

    #[test]
    fn lifo_order_with_spilling() {
        let mut stack: PagedStack<u64> = PagedStack::new(8).unwrap();
        for i in 0..1000u64 {
            stack.push(i).unwrap();
        }
        assert!(stack.spill_count() > 0, "stack should have spilled");
        for i in (0..1000u64).rev() {
            assert_eq!(stack.pop().unwrap(), Some(i), "mismatch at {i}");
        }
        assert!(stack.pop().unwrap().is_none());
        assert!(stack.unspill_count() > 0);
    }

    #[test]
    fn interleaved_push_pop_with_spilling() {
        let mut stack: PagedStack<u32> = PagedStack::new(4).unwrap();
        let mut model: Vec<u32> = Vec::new();
        for round in 0..50u32 {
            for i in 0..5 {
                let v = round * 10 + i;
                stack.push(v).unwrap();
                model.push(v);
            }
            for _ in 0..3 {
                assert_eq!(stack.pop().unwrap(), model.pop());
            }
            assert_eq!(stack.len(), model.len());
        }
        while let Some(expected) = model.pop() {
            assert_eq!(stack.pop().unwrap(), Some(expected));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut stack: PagedStack<u32> = PagedStack::new(2).unwrap();
        for i in 0..20 {
            stack.push(i).unwrap();
        }
        assert_eq!(stack.peek().unwrap().copied(), Some(19));
        assert_eq!(stack.len(), 20);
        assert_eq!(stack.pop().unwrap(), Some(19));
    }

    #[test]
    fn tuple_payloads() {
        let mut stack: PagedStack<(u32, u32, f64)> = PagedStack::new(3).unwrap();
        for i in 0..100u32 {
            stack.push((i, i + 1, i as f64 * 0.5)).unwrap();
        }
        for i in (0..100u32).rev() {
            assert_eq!(stack.pop().unwrap(), Some((i, i + 1, i as f64 * 0.5)));
        }
    }

    #[test]
    fn randomized_behaves_like_vec() {
        let mut rng = DetRng::seed_from_u64(300);
        for _ in 0..8 {
            let mut stack: PagedStack<u16> = PagedStack::new(5).unwrap();
            let mut model: Vec<u16> = Vec::new();
            for _ in 0..rng.index(400) {
                if rng.chance(0.6) {
                    let v = rng.next_u32() as u16;
                    stack.push(v).unwrap();
                    model.push(v);
                } else {
                    assert_eq!(stack.pop().unwrap(), model.pop());
                }
                assert_eq!(stack.len(), model.len());
            }
            while let Some(expected) = model.pop() {
                assert_eq!(stack.pop().unwrap(), Some(expected));
            }
            assert!(stack.pop().unwrap().is_none());
        }
    }
}

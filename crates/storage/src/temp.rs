//! Scoped temporary directories for spill files.
//!
//! The external sorter, paged stack and node store all need scratch space on
//! disk. We avoid an external `tempfile` dependency with a small utility that
//! creates a uniquely named directory under the system temp dir (or a caller
//! supplied parent) and removes it on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temporary directory deleted (best effort) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    keep: bool,
}

impl TempDir {
    /// Create a new temporary directory under the system temp dir.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        Self::new_in(std::env::temp_dir(), prefix)
    }

    /// Create a new temporary directory under `parent`.
    pub fn new_in<P: AsRef<Path>>(parent: P, prefix: &str) -> std::io::Result<Self> {
        let parent = parent.as_ref();
        std::fs::create_dir_all(parent)?;
        // Combine pid, a process-wide counter and a timestamp so concurrent
        // test processes cannot collide.
        let pid = std::process::id();
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0);
            let candidate = parent.join(format!("{prefix}-{pid}-{n}-{nanos}"));
            match std::fs::create_dir(&candidate) {
                Ok(()) => {
                    return Ok(TempDir {
                        path: candidate,
                        keep: false,
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Build a path to a file inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }

    /// Keep the directory on drop (useful when debugging experiments).
    pub fn keep(&mut self) {
        self.keep = true;
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes_directory() {
        let path;
        {
            let dir = TempDir::new("bsc-test").unwrap();
            path = dir.path().to_path_buf();
            assert!(path.is_dir());
            std::fs::write(dir.file("x.bin"), b"hello").unwrap();
            assert!(dir.file("x.bin").exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn keep_preserves_directory() {
        let path;
        {
            let mut dir = TempDir::new("bsc-keep").unwrap();
            dir.keep();
            path = dir.path().to_path_buf();
        }
        assert!(path.exists());
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn unique_names() {
        let a = TempDir::new("bsc-uniq").unwrap();
        let b = TempDir::new("bsc-uniq").unwrap();
        assert_ne!(a.path(), b.path());
    }
}

//! # bsc-storage
//!
//! External-memory substrate for the blogstable workspace.
//!
//! The algorithms of *"Seeking Stable Clusters in the Blogosphere"* (Bansal
//! et al., VLDB 2007) are explicitly designed to be "efficiently realizable in
//! secondary storage": keyword pairs are produced by a single pass over the
//! posts and aggregated with an **external merge sort**, the biconnected
//! component algorithm keeps only a **stack** in memory (paged to disk if it
//! grows too large), and the DFS stable-cluster algorithm keeps per-node state
//! (heaps of best paths, `maxweight` entries) **on disk**, touching it with
//! random reads and writes.
//!
//! This crate provides those primitives:
//!
//! * [`io_stats`] — process-wide I/O accounting so experiments can report read
//!   and write operations (the paper disables the OS page cache to measure
//!   I/O; we count explicit operations instead).
//! * [`codec`] — a compact, dependency-free binary encoding used by every
//!   on-disk record.
//! * [`record_file`] — buffered sequential record files with I/O accounting.
//! * [`external_sort`] — bounded-memory external merge sort.
//! * [`backend`] — the pluggable [`StorageBackend`] trait with its shipped
//!   implementations (append-only log file, plain memory, budget-bounded
//!   block cache) and the [`StorageSpec`] deployment selector.
//! * [`fault`] — a deterministic fault-injecting decorator over any backend
//!   (seeded I/O errors and torn writes), for robustness conformance tests.
//! * [`node_store`] — the typed keyed record store over any backend, used for
//!   the disk-resident algorithms' per-node state.
//! * [`paged_stack`] — a stack that spills to disk beyond a memory budget.
//! * [`memory`] — a simple memory budget tracker shared by the above.
//! * [`temp`] — scoped temporary directories for spill files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod external_sort;
pub mod fault;
pub mod io_stats;
pub mod memory;
pub mod node_store;
pub mod paged_stack;
pub mod record_file;
pub mod temp;

pub use backend::{
    BlockCacheBackend, FaultInner, InMemoryBackend, LogFileBackend, StorageBackend, StorageSpec,
};
pub use codec::{Decode, Encode};
pub use external_sort::{ExternalSorter, SortConfig};
pub use fault::FaultInjectingBackend;
pub use io_stats::{IoScope, IoSnapshot, IoStats};
pub use memory::MemoryBudget;
pub use node_store::NodeStore;
pub use paged_stack::PagedStack;
pub use record_file::{RecordReader, RecordWriter};
pub use temp::TempDir;

/// Errors produced by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// A record could not be decoded from its on-disk representation.
    Corrupt(String),
    /// A key was not present in a keyed store.
    MissingKey(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt record: {msg}"),
            StorageError::MissingKey(k) => write!(f, "missing key: {k}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<StorageError> for std::io::Error {
    fn from(e: StorageError) -> Self {
        match e {
            // Unwrap rather than nest: the original error kind survives.
            StorageError::Io(io) => io,
            other => std::io::Error::other(other),
        }
    }
}

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_error_converts_into_io_error_and_back() {
        // Io unwraps to the original error, preserving its kind.
        let io: std::io::Error =
            StorageError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")).into();
        assert_eq!(io.kind(), std::io::ErrorKind::NotFound);
        // Non-Io variants wrap, keeping the message and source chain.
        let io: std::io::Error = StorageError::Corrupt("truncated frame".into()).into();
        assert!(io.to_string().contains("truncated frame"));
        assert!(io.get_ref().is_some(), "source must be preserved");
        let back: StorageError = std::io::Error::other("boom").into();
        assert!(matches!(back, StorageError::Io(_)));
    }
}

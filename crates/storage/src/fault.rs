//! Deterministic fault injection for storage backends.
//!
//! [`FaultInjectingBackend`] wraps any [`StorageBackend`] and makes its
//! fallible operations (`get`, `put`, `delete`, `compact`) fail on a
//! deterministic, seed-reproducible schedule driven by
//! [`bsc_util::DetRng`]. Two fault shapes are injected:
//!
//! * **clean I/O errors** — the operation fails with an
//!   [`StorageError::Io`] and the underlying store is untouched;
//! * **torn writes** — a failing `put`/`delete` is *applied* to the inner
//!   store before the error is reported, modelling a crash after the write
//!   reached the disk but before the acknowledgement did. The caller sees a
//!   failure, the store sees the mutation — exactly the ambiguity real
//!   storage presents after a power cut mid-`fsync`.
//!
//! The point of the wrapper is conformance testing: every disk-resident
//! solver must surface an injected fault as a clean `BscError` — never a
//! panic, never a silently corrupted top-k. The
//! [`StorageSpec::Fault`](crate::backend::StorageSpec::Fault) spec makes
//! the wrapper reachable from everything that accepts a storage spec
//! (`fault:<seed>:<every>:<inner>` on the CLI and in env vars), so the
//! whole stack from `Pipeline` to the cluster workers can run under
//! injected faults without code changes.
//!
//! Determinism contract: the fault schedule is a pure function of the seed
//! and the *sequence of fallible operations*. Two runs that issue the same
//! operations against the same seed observe identical faults, which is
//! what lets CI pin `BSC_FAULT_SEED` and reproduce a failure locally.

use std::fmt;

use bsc_util::DetRng;

use crate::backend::StorageBackend;
use crate::io_stats::IoSnapshot;
use crate::{Result, StorageError};

/// Message carried by every injected error, so tests (and humans reading
/// logs) can tell an injected fault from a real one.
pub const INJECTED_FAULT_MESSAGE: &str = "injected storage fault";

/// A [`StorageBackend`] decorator that injects deterministic faults.
///
/// Each fallible operation rolls the seeded RNG: with probability
/// `1/every` the operation fails with an injected [`StorageError::Io`].
/// Half of the failing mutations (again deterministically) are applied to
/// the inner store *before* the error is returned — the torn-write case.
/// `every == 0` disables injection entirely, making the wrapper a
/// transparent pass-through.
pub struct FaultInjectingBackend {
    inner: Box<dyn StorageBackend>,
    rng: DetRng,
    every: u64,
    injected: u64,
    torn: u64,
}

impl fmt::Debug for FaultInjectingBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjectingBackend")
            .field("inner", &self.inner)
            .field("every", &self.every)
            .field("injected", &self.injected)
            .field("torn", &self.torn)
            .finish()
    }
}

impl FaultInjectingBackend {
    /// Wrap `inner`, injecting one fault per `every` fallible operations on
    /// average, on the schedule determined by `seed`.
    pub fn new(inner: Box<dyn StorageBackend>, seed: u64, every: u64) -> FaultInjectingBackend {
        FaultInjectingBackend {
            inner,
            rng: DetRng::seed_from_u64(seed),
            every,
            injected: 0,
            torn: 0,
        }
    }

    /// Number of faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected
    }

    /// Number of injected faults that were torn (the mutation was applied
    /// before the error was reported). Always `<= injected_faults()`.
    pub fn torn_writes(&self) -> u64 {
        self.torn
    }

    /// Unwrap, returning the inner backend (with every torn write applied).
    pub fn into_inner(self) -> Box<dyn StorageBackend> {
        self.inner
    }

    /// Roll the schedule: `true` when this operation must fail. Consumes
    /// exactly one RNG draw per fallible operation so the schedule depends
    /// only on the operation *sequence*, not on key or value contents.
    fn trip(&mut self) -> bool {
        if self.every == 0 {
            return false;
        }
        let fault = self.rng.below(self.every) == 0;
        if fault {
            self.injected += 1;
        }
        fault
    }

    fn injected_error(&self) -> StorageError {
        StorageError::Io(std::io::Error::other(INJECTED_FAULT_MESSAGE))
    }
}

impl StorageBackend for FaultInjectingBackend {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if self.trip() {
            return Err(self.injected_error());
        }
        self.inner.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.trip() {
            // Torn write: half the failing mutations land anyway.
            if self.rng.chance(0.5) {
                self.torn += 1;
                self.inner.put(key, value)?;
            }
            return Err(self.injected_error());
        }
        self.inner.put(key, value)
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        if self.trip() {
            if self.rng.chance(0.5) {
                self.torn += 1;
                self.inner.delete(key)?;
            }
            return Err(self.injected_error());
        }
        self.inner.delete(key)
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.inner.contains(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn keys(&self) -> Vec<Vec<u8>> {
        self.inner.keys()
    }

    fn compact(&mut self) -> Result<u64> {
        if self.trip() {
            return Err(self.injected_error());
        }
        self.inner.compact()
    }

    fn storage_bytes(&self) -> u64 {
        self.inner.storage_bytes()
    }

    fn io_snapshot(&self) -> IoSnapshot {
        self.inner.io_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InMemoryBackend;

    fn wrapped(seed: u64, every: u64) -> FaultInjectingBackend {
        FaultInjectingBackend::new(Box::new(InMemoryBackend::new()), seed, every)
    }

    #[test]
    fn the_fault_schedule_is_deterministic_in_the_seed() {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut backend = wrapped(42, 4);
            let mut outcomes = Vec::new();
            for i in 0..200u32 {
                let key = i.to_le_bytes();
                outcomes.push(backend.put(&key, b"v").is_err());
                outcomes.push(backend.get(&key).is_err());
            }
            runs.push((outcomes, backend.injected_faults(), backend.torn_writes()));
        }
        assert_eq!(runs[0], runs[1]);
        assert!(runs[0].1 > 0, "schedule never fired at every=4");
        // A different seed produces a different schedule.
        let mut other = wrapped(43, 4);
        let mut outcomes = Vec::new();
        for i in 0..200u32 {
            let key = i.to_le_bytes();
            outcomes.push(other.put(&key, b"v").is_err());
            outcomes.push(other.get(&key).is_err());
        }
        assert_ne!(runs[0].0, outcomes);
    }

    #[test]
    fn torn_writes_land_in_the_inner_store_despite_the_error() {
        let mut backend = wrapped(7, 2);
        let mut failed_puts = Vec::new();
        for i in 0..500u32 {
            let key = i.to_le_bytes().to_vec();
            if backend.put(&key, b"payload").is_err() {
                failed_puts.push(key);
            }
        }
        assert!(backend.torn_writes() > 0, "no torn writes at every=2");
        assert!(backend.torn_writes() <= backend.injected_faults());
        // Some failed puts are visible (torn), the rest are absent; either
        // way the store answers cleanly.
        let landed = failed_puts
            .iter()
            .filter(|key| backend.contains(key))
            .count();
        assert!(landed > 0 && landed < failed_puts.len());
    }

    #[test]
    fn every_zero_disables_injection() {
        let mut backend = wrapped(42, 0);
        for i in 0..100u32 {
            let key = i.to_le_bytes();
            backend.put(&key, b"v").unwrap();
            assert_eq!(backend.get(&key).unwrap().as_deref(), Some(&b"v"[..]));
        }
        assert_eq!(backend.injected_faults(), 0);
    }

    #[test]
    fn injected_errors_are_recognizable() {
        let mut backend = wrapped(1, 1); // every operation faults
        let error = backend.put(b"k", b"v").unwrap_err();
        assert!(error.to_string().contains(INJECTED_FAULT_MESSAGE));
    }
}

//! Buffered sequential record files with I/O accounting.
//!
//! Records are stored back to back as `varint(length) || payload`, where the
//! payload is produced by the [`crate::codec`] traits. All reads and writes
//! are reported to the global [`crate::io_stats`] counters so experiments can
//! report logical I/O alongside wall-clock time.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

use crate::codec::{write_varint, Decode, Encode};
use crate::{io_stats, Result, StorageError};

/// Appends encoded records to a file.
#[derive(Debug)]
pub struct RecordWriter<T> {
    path: PathBuf,
    writer: BufWriter<File>,
    scratch: Vec<u8>,
    records: u64,
    bytes: u64,
    _marker: PhantomData<T>,
}

impl<T: Encode> RecordWriter<T> {
    /// Create (truncate) a record file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(RecordWriter {
            path,
            writer: BufWriter::new(file),
            scratch: Vec::with_capacity(128),
            records: 0,
            bytes: 0,
            _marker: PhantomData,
        })
    }

    /// Append one record.
    pub fn write(&mut self, record: &T) -> Result<()> {
        self.scratch.clear();
        record.encode(&mut self.scratch);
        let mut header = Vec::with_capacity(5);
        write_varint(&mut header, self.scratch.len() as u64);
        self.writer.write_all(&header)?;
        self.writer.write_all(&self.scratch)?;
        let written = (header.len() + self.scratch.len()) as u64;
        io_stats::global().record_write(written);
        self.records += 1;
        self.bytes += written;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Number of bytes written so far (including length prefixes).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flush buffers and return the file path.
    pub fn finish(mut self) -> Result<PathBuf> {
        self.writer.flush()?;
        Ok(self.path)
    }
}

/// Reads encoded records sequentially from a file.
#[derive(Debug)]
pub struct RecordReader<T> {
    reader: BufReader<File>,
    _marker: PhantomData<T>,
}

impl<T: Decode> RecordReader<T> {
    /// Open a record file for sequential reading.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = File::open(path)?;
        Ok(RecordReader {
            reader: BufReader::new(file),
            _marker: PhantomData,
        })
    }

    /// Seek to an absolute byte offset (counted as a random seek).
    pub fn seek(&mut self, offset: u64) -> Result<()> {
        self.reader.seek(SeekFrom::Start(offset))?;
        io_stats::global().record_seek();
        Ok(())
    }

    /// Read the next record, or `None` at end of file.
    pub fn read(&mut self) -> Result<Option<T>> {
        let len = match self.read_length()? {
            Some(len) => len,
            None => return Ok(None),
        };
        let mut payload = vec![0u8; len];
        self.reader.read_exact(&mut payload)?;
        io_stats::global().record_read(len as u64);
        let mut slice = payload.as_slice();
        let record = T::decode(&mut slice)?;
        if !slice.is_empty() {
            return Err(StorageError::Corrupt(
                "record payload has trailing bytes".into(),
            ));
        }
        Ok(Some(record))
    }

    fn read_length(&mut self) -> Result<Option<usize>> {
        // Read the varint length byte by byte so we never over-read.
        let mut value = 0u64;
        let mut shift = 0u32;
        let mut first = true;
        loop {
            let mut byte = [0u8; 1];
            match self.reader.read(&mut byte)? {
                0 if first => return Ok(None),
                0 => {
                    return Err(StorageError::Corrupt(
                        "truncated record length prefix".into(),
                    ))
                }
                _ => {}
            }
            first = false;
            value |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(Some(value as usize));
            }
            shift += 7;
            if shift >= 64 {
                return Err(StorageError::Corrupt("length prefix overflow".into()));
            }
        }
    }

    /// Iterate over all remaining records.
    pub fn into_records(self) -> RecordIter<T> {
        RecordIter { reader: self }
    }
}

/// Iterator adapter over a [`RecordReader`].
#[derive(Debug)]
pub struct RecordIter<T> {
    reader: RecordReader<T>,
}

impl<T: Decode> Iterator for RecordIter<T> {
    type Item = Result<T>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.read().transpose()
    }
}

/// Read every record of a file into a vector (convenience for tests and
/// small files).
pub fn read_all<T: Decode, P: AsRef<Path>>(path: P) -> Result<Vec<T>> {
    RecordReader::open(path)?.into_records().collect()
}

/// Write every record of a slice to a new file (convenience).
pub fn write_all<T: Encode, P: AsRef<Path>>(path: P, records: &[T]) -> Result<()> {
    let mut writer = RecordWriter::create(path)?;
    for record in records {
        writer.write(record)?;
    }
    writer.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    #[test]
    fn roundtrip_records() {
        let dir = TempDir::new("recfile").unwrap();
        let path = dir.file("data.rec");
        let records: Vec<(u32, u32, f64)> = (0..100).map(|i| (i, i * 2, i as f64 / 3.0)).collect();
        write_all(&path, &records).unwrap();
        let back: Vec<(u32, u32, f64)> = read_all(&path).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_file_reads_none() {
        let dir = TempDir::new("recfile").unwrap();
        let path = dir.file("empty.rec");
        write_all::<u32, _>(&path, &[]).unwrap();
        let mut reader: RecordReader<u32> = RecordReader::open(&path).unwrap();
        assert!(reader.read().unwrap().is_none());
    }

    #[test]
    fn counts_records_and_bytes() {
        let dir = TempDir::new("recfile").unwrap();
        let path = dir.file("counted.rec");
        let mut writer: RecordWriter<String> = RecordWriter::create(&path).unwrap();
        writer.write(&"hello".to_string()).unwrap();
        writer.write(&"world!".to_string()).unwrap();
        assert_eq!(writer.records_written(), 2);
        assert!(writer.bytes_written() > 10);
        writer.finish().unwrap();
    }

    #[test]
    fn io_stats_are_updated() {
        let dir = TempDir::new("recfile").unwrap();
        let path = dir.file("stats.rec");
        let before = io_stats::global().snapshot();
        write_all(&path, &[1u64, 2, 3]).unwrap();
        let _: Vec<u64> = read_all(&path).unwrap();
        let delta = io_stats::global().snapshot().delta(&before);
        assert!(delta.write_ops >= 3);
        assert!(delta.read_ops >= 3);
    }

    #[test]
    fn corrupt_file_is_detected() {
        let dir = TempDir::new("recfile").unwrap();
        let path = dir.file("corrupt.rec");
        std::fs::write(&path, [5u8, 1, 2]).unwrap(); // claims 5 bytes, has 2
        let mut reader: RecordReader<u32> = RecordReader::open(&path).unwrap();
        assert!(reader.read().is_err());
    }

    #[test]
    fn large_records_roundtrip() {
        let dir = TempDir::new("recfile").unwrap();
        let path = dir.file("large.rec");
        let big: Vec<u32> = (0..10_000).collect();
        write_all(&path, std::slice::from_ref(&big)).unwrap();
        let back: Vec<Vec<u32>> = read_all(&path).unwrap();
        assert_eq!(back, vec![big]);
    }
}

//! Memory budget tracking.
//!
//! The paper's algorithms are parameterized by the amount of main memory `M`
//! available: the BFS stable-cluster algorithm switches to a block-nested-loop
//! scheme when the clusters of `g + 1` intervals do not fit, and the
//! biconnected-component stack is paged out when it outgrows memory. The
//! [`MemoryBudget`] type is the shared accounting object those components use
//! to decide when to spill.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared, thread-safe memory budget measured in bytes.
///
/// The budget is advisory: callers `charge` and `release` logical byte counts
/// and query [`MemoryBudget::would_exceed`] before growing in-memory state.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: usize,
    used: AtomicUsize,
}

impl MemoryBudget {
    /// Create a budget with a hard `limit` in bytes.
    pub fn new(limit: usize) -> Arc<Self> {
        Arc::new(MemoryBudget {
            limit,
            used: AtomicUsize::new(0),
        })
    }

    /// An effectively unlimited budget (used when the caller does not care).
    pub fn unlimited() -> Arc<Self> {
        Self::new(usize::MAX)
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently charged against the budget.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes remaining before the limit is reached.
    pub fn remaining(&self) -> usize {
        self.limit.saturating_sub(self.used())
    }

    /// Would charging `bytes` more exceed the limit?
    pub fn would_exceed(&self, bytes: usize) -> bool {
        self.used().saturating_add(bytes) > self.limit
    }

    /// Charge `bytes` against the budget (even past the limit: the budget is
    /// advisory, the caller is expected to have checked first).
    pub fn charge(&self, bytes: usize) {
        self.used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Release `bytes` previously charged.
    pub fn release(&self, bytes: usize) {
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release() {
        let budget = MemoryBudget::new(1000);
        assert_eq!(budget.limit(), 1000);
        assert_eq!(budget.used(), 0);
        budget.charge(400);
        assert_eq!(budget.used(), 400);
        assert_eq!(budget.remaining(), 600);
        assert!(!budget.would_exceed(600));
        assert!(budget.would_exceed(601));
        budget.release(150);
        assert_eq!(budget.used(), 250);
    }

    #[test]
    fn release_saturates_at_zero() {
        let budget = MemoryBudget::new(100);
        budget.charge(10);
        budget.release(50);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn unlimited_never_exceeds() {
        let budget = MemoryBudget::unlimited();
        budget.charge(usize::MAX / 2);
        assert!(!budget.would_exceed(1024));
    }
}

//! Process-wide I/O accounting.
//!
//! The paper measures its secondary-storage algorithms with the OS page cache
//! disabled so that every logical read and write hits the disk. We cannot
//! (and should not) disable the page cache in a library, so instead every
//! storage primitive in this workspace reports *logical* I/O operations and
//! bytes through a shared set of counters. Experiments read a snapshot before
//! and after a run and report the difference.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Global counters of logical I/O performed by the storage substrate.
///
/// Counters are monotonically increasing; use [`IoStats::snapshot`] and
/// [`IoSnapshot::delta`] to measure a region of interest, or [`IoScope`] for
/// RAII-style measurement.
#[derive(Debug, Default)]
pub struct IoStats {
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    seek_ops: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of the [`IoStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Number of logical read operations (record reads, page reads).
    pub read_ops: u64,
    /// Number of logical write operations.
    pub write_ops: u64,
    /// Number of random seeks (repositioning within a file).
    pub seek_ops: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Cache pages evicted under memory pressure (block-cache backends).
    pub evictions: u64,
}

impl IoSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            seek_ops: self.seek_ops.saturating_sub(earlier.seek_ops),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }

    /// Total number of I/O operations of any kind.
    pub fn total_ops(&self) -> u64 {
        self.read_ops + self.write_ops + self.seek_ops
    }

    /// Total bytes transferred in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

impl IoStats {
    /// Create a fresh, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `bytes` bytes.
    pub fn record_read(&self, bytes: u64) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a write of `bytes` bytes.
    pub fn record_write(&self, bytes: u64) {
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a random seek.
    pub fn record_seek(&self) {
        self.seek_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache-page eviction under memory pressure.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Take a snapshot of the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            read_ops: self.read_ops.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            seek_ops: self.seek_ops.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero. Mostly useful in tests.
    pub fn reset(&self) {
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.seek_ops.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

static GLOBAL_STATS: OnceLock<Arc<IoStats>> = OnceLock::new();

/// Return the process-wide [`IoStats`] instance, creating it on first use.
pub fn global() -> Arc<IoStats> {
    Arc::clone(GLOBAL_STATS.get_or_init(|| Arc::new(IoStats::new())))
}

/// RAII helper that snapshots the global counters on construction and reports
/// the delta when [`IoScope::finish`] is called.
///
/// ```
/// use bsc_storage::io_stats::{self, IoScope};
///
/// let scope = IoScope::start();
/// io_stats::global().record_read(128);
/// let delta = scope.finish();
/// assert!(delta.read_ops >= 1);
/// ```
#[derive(Debug)]
pub struct IoScope {
    start: IoSnapshot,
}

impl IoScope {
    /// Begin measuring: snapshot the global counters now.
    pub fn start() -> Self {
        IoScope {
            start: global().snapshot(),
        }
    }

    /// Finish measuring and return the I/O performed since [`IoScope::start`].
    pub fn finish(self) -> IoSnapshot {
        global().snapshot().delta(&self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let stats = IoStats::new();
        stats.record_read(100);
        stats.record_read(50);
        stats.record_write(10);
        stats.record_seek();
        let snap = stats.snapshot();
        assert_eq!(snap.read_ops, 2);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.seek_ops, 1);
        assert_eq!(snap.bytes_read, 150);
        assert_eq!(snap.bytes_written, 10);
        assert_eq!(snap.total_ops(), 4);
        assert_eq!(snap.total_bytes(), 160);
    }

    #[test]
    fn delta_is_componentwise() {
        let a = IoSnapshot {
            read_ops: 10,
            write_ops: 5,
            seek_ops: 2,
            bytes_read: 1000,
            bytes_written: 500,
            evictions: 1,
        };
        let b = IoSnapshot {
            read_ops: 15,
            write_ops: 9,
            seek_ops: 2,
            bytes_read: 1500,
            bytes_written: 700,
            evictions: 4,
        };
        let d = b.delta(&a);
        assert_eq!(d.read_ops, 5);
        assert_eq!(d.write_ops, 4);
        assert_eq!(d.seek_ops, 0);
        assert_eq!(d.bytes_read, 500);
        assert_eq!(d.bytes_written, 200);
        assert_eq!(d.evictions, 3);
    }

    #[test]
    fn delta_saturates() {
        let a = IoSnapshot {
            read_ops: 10,
            ..Default::default()
        };
        let b = IoSnapshot::default();
        assert_eq!(b.delta(&a).read_ops, 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let stats = IoStats::new();
        stats.record_read(100);
        stats.reset();
        assert_eq!(stats.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn global_scope_measures_delta() {
        let scope = IoScope::start();
        global().record_write(42);
        let delta = scope.finish();
        assert!(delta.write_ops >= 1);
        assert!(delta.bytes_written >= 42);
    }
}

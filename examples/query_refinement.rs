//! Query refinement from keyword clusters — the application sketched in the
//! paper's introduction: "If a search query for a specific interval falls in
//! a cluster, the rest of the keywords in that cluster are good candidates
//! for query refinement."
//!
//! This example builds the per-day clusters of the scripted week and answers
//! refinement queries: for a query keyword and a day, it prints the other
//! keywords of the cluster the query falls in, ranked by the strength (ρ) of
//! their correlation edge with the query keyword.
//!
//! ```text
//! cargo run --release --example query_refinement [keyword] [day-index]
//! ```

use blogstable::graph::prune::PruneConfig;
use blogstable::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let query = args
        .first()
        .map(String::as_str)
        .unwrap_or("iphon")
        .to_string();
    let day: u32 = args.get(1).and_then(|d| d.parse().ok()).unwrap_or(3);

    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    // Minimum co-occurrence count of 3 on top of the paper's chi^2/rho
    // thresholds, appropriate for this small synthetic corpus.
    let params = PipelineParams {
        prune: PruneConfig::paper().with_min_pair_count(3),
        ..PipelineParams::default()
    };
    let outcome = Pipeline::new(params)
        .expect("valid pipeline parameters")
        .run(&corpus)
        .expect("pipeline run");

    let Some(query_id) = corpus.vocabulary.get(&query) else {
        eprintln!("keyword '{query}' does not occur in the corpus");
        std::process::exit(1);
    };
    if day as usize >= outcome.interval_clusters.len() {
        eprintln!(
            "day {day} out of range (0..{})",
            outcome.interval_clusters.len()
        );
        std::process::exit(1);
    }

    println!(
        "query '{query}' on {}:",
        corpus.timeline.label(IntervalId(day))
    );
    let clusters = &outcome.interval_clusters[day as usize];
    let Some(cluster) = clusters.iter().find(|c| c.contains(query_id)) else {
        println!("  no cluster contains '{query}' on that day (no chatter)");
        return;
    };

    // Rank the other cluster members by the correlation of their edge with
    // the query keyword (falling back to membership order).
    let mut suggestions: Vec<(String, f64)> = cluster
        .keywords
        .iter()
        .filter(|&&k| k != query_id)
        .map(|&k| {
            let rho = cluster
                .edges
                .iter()
                .filter(|(u, v, _)| (*u == query_id && *v == k) || (*v == query_id && *u == k))
                .map(|&(_, _, w)| w)
                .fold(0.0f64, f64::max);
            (corpus.vocabulary.name_or_placeholder(k), rho)
        })
        .collect();
    suggestions.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!(
        "  refinement candidates (cluster of {} keywords):",
        cluster.len()
    );
    for (keyword, rho) in suggestions.iter().take(10) {
        if *rho > 0.0 {
            println!("    {keyword:<16} rho = {rho:.2}");
        } else {
            println!("    {keyword:<16} (same cluster)");
        }
    }
}

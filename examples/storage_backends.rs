//! Storage backends: run the same disk-resident solver over every shipped
//! `StorageSpec` and compare the I/O each backend performs — the answers are
//! byte-identical, only the memory/I-O trade-off moves.
//!
//! ```text
//! cargo run --release --example storage_backends [memory|logfile|blockcache[:<bytes>]]
//! ```
//!
//! With an argument, only that backend runs (same strings as `repro
//! --backend` and the `BSC_STORAGE_BACKEND` CI matrix). See
//! `docs/storage.md` for how the block-cache budget maps onto the paper's
//! memory-limited experiments.

use blogstable::core::dfs::{DfsConfig, DfsStableClusters};
use blogstable::prelude::*;
use blogstable::storage::io_stats;

fn main() {
    let backends: Vec<StorageSpec> = match std::env::args().nth(1) {
        Some(arg) => match StorageSpec::parse(&arg) {
            Some(spec) => vec![spec],
            None => {
                eprintln!("unknown backend '{arg}' (expected memory, logfile, blockcache or blockcache:<bytes>)");
                std::process::exit(2);
            }
        },
        None => {
            let mut all = StorageSpec::ALL.to_vec();
            // A deliberately starved cache to show eviction pressure.
            all.push(StorageSpec::BlockCache { budget_bytes: 8192 });
            all
        }
    };

    let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 6,
        nodes_per_interval: 60,
        avg_out_degree: 4,
        gap: 1,
        seed: 2007,
    })
    .generate();
    let params = KlStableParams::full_paths(5, graph.num_intervals());
    println!(
        "cluster graph: {} nodes, {} edges; top-{} full paths via disk-resident DFS\n",
        graph.num_nodes(),
        graph.num_edges(),
        params.k
    );
    println!(
        "{:>20}  {:>8} {:>8} {:>10} {:>10}  best path weight",
        "backend", "reads", "writes", "evictions", "KiB moved"
    );

    let mut reference: Option<Vec<ClusterPath>> = None;
    for spec in backends {
        let before = io_stats::global().snapshot();
        let paths = DfsStableClusters::with_config(params, DfsConfig::default().with_storage(spec))
            .run(&graph)
            .expect("dfs run");
        let io = io_stats::global().snapshot().delta(&before);
        println!(
            "{:>20}  {:>8} {:>8} {:>10} {:>10}  {:.3}",
            spec.to_string(),
            io.read_ops,
            io.write_ops,
            io.evictions,
            io.total_bytes() / 1024,
            paths.first().map(ClusterPath::weight).unwrap_or(0.0),
        );
        // The backend must never change the answer.
        match &reference {
            None => reference = Some(paths),
            Some(expected) => {
                assert_eq!(expected.len(), paths.len(), "{spec}");
                for (a, b) in expected.iter().zip(paths.iter()) {
                    assert_eq!(a.nodes(), b.nodes(), "{spec}");
                    assert_eq!(a.weight().to_bits(), b.weight().to_bits(), "{spec}");
                }
            }
        }
    }
    println!("\nall backends returned byte-identical top-k paths");
}

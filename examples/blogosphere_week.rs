//! The paper's qualitative study as an example: analyse the scripted
//! January 6–12 2007 week and show the event clusters of Figures 1, 2, 4, 15
//! and 16 — the stem-cell announcement, Beckham's move to the LA Galaxy, the
//! FA-cup replay with a gap, the iPhone launch drifting into the Cisco
//! lawsuit, and the battle of Ras Kamboni spanning the whole week.
//!
//! ```text
//! cargo run --release --example blogosphere_week
//! ```

use blogstable::core::bfs::BfsStableClusters;
use blogstable::core::problem::KlStableParams;
use blogstable::graph::prune::PruneConfig;
use blogstable::prelude::*;

fn main() {
    let config = SyntheticConfig::week_jan_2007().with_posts_per_interval(800);
    let corpus = SyntheticBlogosphere::new(config).generate();

    let params = PipelineParams {
        gap: 2,
        k: 50,
        // Minimum co-occurrence count of 4 on top of the paper's thresholds,
        // appropriate for the reduced corpus scale (see EXPERIMENTS.md).
        prune: PruneConfig::paper().with_min_pair_count(4),
        ..PipelineParams::default()
    }
    .full_paths();
    let outcome = Pipeline::new(params)
        .expect("valid pipeline parameters")
        .run(&corpus)
        .expect("pipeline run");

    println!("day-by-day keyword clusters");
    println!("---------------------------");
    for (day, clusters) in outcome.interval_clusters.iter().enumerate() {
        println!(
            "{}: {} clusters",
            corpus.timeline.label(IntervalId(day as u32)),
            clusters.len()
        );
    }

    // Show the clusters behind the paper's figures.
    let probes: &[(&str, u32, &[&str])] = &[
        ("Figure 1  (stem cells, Jan 8)", 2, &["stem", "cell"]),
        ("Figure 2  (Beckham, Jan 12)", 6, &["beckham", "mls"]),
        ("Figure 4  (FA cup, Jan 6)", 0, &["liverpool", "arsenal"]),
        ("Figure 15 (iPhone, Jan 9)", 3, &["iphon", "appl"]),
        (
            "Figure 15 (Cisco lawsuit, Jan 11)",
            5,
            &["iphon", "lawsuit"],
        ),
        ("Figure 16 (Somalia, Jan 6)", 0, &["somalia", "islamist"]),
    ];
    println!("\nevent clusters");
    println!("--------------");
    for (figure, day, keywords) in probes {
        let ids: Vec<KeywordId> = keywords
            .iter()
            .filter_map(|k| corpus.vocabulary.get(k))
            .collect();
        match outcome.interval_clusters[*day as usize]
            .iter()
            .find(|c| ids.iter().all(|id| c.contains(*id)))
        {
            Some(cluster) => println!("{figure}: {}", cluster.render(&corpus.vocabulary)),
            None => println!("{figure}: not found"),
        }
    }

    // Full-week stable clusters (Figure 16) and shorter drifting ones.
    println!("\nfull-week stable clusters (length 6)");
    println!("------------------------------------");
    for path in outcome.stable_paths.iter().take(3) {
        println!("weight {:.2}", path.weight());
        for line in outcome.describe_path(path, &corpus.vocabulary) {
            println!("    {line}");
        }
    }

    // The drift of Figure 15: search paths of length 3 that stay on the
    // iPhone topic but shift from launch chatter to the lawsuit.
    let iphone_paths = BfsStableClusters::new(KlStableParams::new(100, 3))
        .run(&outcome.cluster_graph)
        .expect("bfs");
    if let (Some(iphon), Some(lawsuit)) = (
        corpus.vocabulary.get("iphon"),
        corpus.vocabulary.get("lawsuit"),
    ) {
        if let Some(path) = iphone_paths.iter().find(|p| {
            p.nodes()
                .iter()
                .all(|n| outcome.cluster_at(*n).contains(iphon))
                && outcome.cluster_at(p.last()).contains(lawsuit)
        }) {
            println!("\ntopic drift (Figure 15): iPhone launch -> Cisco lawsuit");
            for line in outcome.describe_path(path, &corpus.vocabulary) {
                println!("    {line}");
            }
        }
    }
}

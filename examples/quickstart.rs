//! Quickstart: generate a small synthetic blogosphere week, run the full
//! pipeline (keyword clusters per day + stable clusters across days) and
//! print what was found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blogstable::graph::prune::PruneConfig;
use blogstable::prelude::*;

fn main() {
    // 1. Data: a small synthetic week with the scripted January-2007 events
    //    (stem cells, Beckham, FA cup, iPhone/Cisco, Somalia).
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    println!(
        "generated {} posts over {} days ({} distinct keywords)",
        corpus.timeline.num_documents(),
        corpus.timeline.num_intervals(),
        corpus.vocabulary.len()
    );

    // 2. Pipeline: chi^2 + rho pruning, biconnected-component clusters,
    //    Jaccard cluster graph with gaps up to 2, top-10 paths of length 3.
    //    At this small corpus scale a minimum co-occurrence count of 3 is
    //    added on top of the paper's thresholds (see EXPERIMENTS.md).
    let params = PipelineParams {
        prune: PruneConfig::paper().with_min_pair_count(3),
        ..PipelineParams::default()
    }
    .exact_length(3);
    let outcome = Pipeline::new(params)
        .expect("valid pipeline parameters")
        .run(&corpus)
        .expect("pipeline run");

    println!("\nclusters per day:");
    for (day, clusters) in outcome.interval_clusters.iter().enumerate() {
        println!(
            "  {}: {} clusters (largest {})",
            corpus.timeline.label(IntervalId(day as u32)),
            clusters.len(),
            clusters.iter().map(|c| c.len()).max().unwrap_or(0)
        );
    }

    println!(
        "\ncluster graph: {} nodes, {} edges (gap = {})",
        outcome.cluster_graph.num_nodes(),
        outcome.cluster_graph.num_edges(),
        outcome.cluster_graph.gap()
    );

    println!("\ntop stable clusters (paths of length 3):");
    for (rank, path) in outcome.stable_paths.iter().take(5).enumerate() {
        println!("  #{} weight {:.2}", rank + 1, path.weight());
        for line in outcome.describe_path(path, &corpus.vocabulary) {
            println!("      {line}");
        }
    }
}

//! Online (streaming) stable-cluster tracking — Section 4.6.
//!
//! Blog posts arrive day by day; instead of recomputing everything, the
//! online solver ingests the new day's clusters, computes affinity edges to
//! the recent days it still remembers, and updates the global top-k. This
//! example feeds the scripted week one day at a time and prints how the best
//! stable cluster evolves.
//!
//! ```text
//! cargo run --release --example streaming_chatter
//! ```

use blogstable::core::affinity::JaccardAffinity;
use blogstable::core::problem::KlStableParams;
use blogstable::core::streaming::OnlineClusterFeed;
use blogstable::corpus::pairs::PairCounter;
use blogstable::graph::cluster::ClusterExtractor;
use blogstable::graph::keyword_graph::KeywordGraphBuilder;
use blogstable::graph::prune::PruneConfig;
use blogstable::prelude::*;

fn main() {
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();

    // Track the best paths of length 3 with gaps up to 2 days.
    let mut feed =
        OnlineClusterFeed::new(KlStableParams::new(5, 3), 2, Box::new(JaccardAffinity), 0.1);

    let counter = PairCounter::in_memory();
    let prune = PruneConfig::paper().with_min_pair_count(3);
    let extractor = ClusterExtractor::default();

    for (interval, documents) in corpus.timeline.iter() {
        // Per-day cluster generation (Section 3) ...
        let counts = counter.count(documents).expect("pair counting");
        let keyword_graph = KeywordGraphBuilder::from_pair_counts(&counts);
        let (pruned, _) = prune.prune(&keyword_graph);
        let clusters = extractor.extract(&pruned, interval).expect("extraction");
        println!(
            "{}: ingesting {} clusters",
            corpus.timeline.label(interval),
            clusters.len()
        );

        // ... streamed into the online stable-cluster tracker (Section 4.6).
        feed.push_clusters(clusters);

        match feed.current_top_k().first() {
            Some(best) => {
                let first = best.first();
                let last = best.last();
                println!(
                    "    best stable cluster so far: weight {:.2}, t{} -> t{}",
                    best.weight(),
                    first.interval,
                    last.interval
                );
            }
            None => println!("    no stable cluster of length 3 yet"),
        }
    }

    println!(
        "\ningested {} intervals, {} affinity edges in total",
        feed.solver().num_intervals(),
        feed.solver().edges_ingested()
    );
}

//! The long-lived query engine: one resident graph, many queries, epochs.
//!
//! ```text
//! cargo run --release --example query_service
//! ```
//!
//! Builds a synthetic "blogosphere week" once, installs its cluster graph
//! into a [`QueryEngine`], and serves a burst of mixed-algorithm queries
//! from the shared snapshot — then streams two more days in, publishing new
//! epochs while queries keep flowing. Every engine answer is checked
//! against the one-shot solve of the same request (the example exits
//! nonzero on any mismatch, so CI can run it as a smoke test). See
//! `docs/service.md` for the protocol the `bsc serve` binary wraps around
//! this engine.

use blogstable::core::problem::StableClusterSpec;
use blogstable::core::solver::AlgorithmKind;
use blogstable::prelude::*;

fn check(expected: &[ClusterPath], got: &[ClusterPath], context: &str) {
    let identical = expected.len() == got.len()
        && expected
            .iter()
            .zip(got.iter())
            .all(|(a, b)| a.nodes() == b.nodes() && a.weight().to_bits() == b.weight().to_bits());
    if !identical {
        eprintln!("MISMATCH: {context}: engine answer differs from the one-shot solve");
        std::process::exit(1);
    }
}

fn main() {
    // One pipeline run builds the graph; the snapshot is the sharing unit.
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    let pipeline = Pipeline::new(PipelineParams::default().exact_length(2)).expect("valid params");
    let build = pipeline
        .build_snapshot(&corpus.timeline)
        .expect("graph construction");
    println!(
        "built the cluster graph once: {} nodes, {} edges over {} intervals",
        build.snapshot.num_nodes(),
        build.snapshot.num_edges(),
        build.snapshot.num_intervals(),
    );

    let engine = QueryEngine::new(EngineConfig::default().workers(2)).expect("engine starts");
    let installed = engine.install(build.snapshot.clone());
    println!("installed as epoch {}\n", installed.epoch());

    // A burst of mixed queries against the shared snapshot. The second BFS
    // query is identical to the first — watch the cache counters.
    let queries: Vec<(&str, QueryRequest)> = vec![
        (
            "top-5 BFS, length 2",
            QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 5),
        ),
        (
            "top-5 BFS, length 2 (repeat — cache hit)",
            QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 5),
        ),
        (
            "top-5 DFS, length 2, in-memory backend",
            QueryRequest::new(AlgorithmKind::Dfs, StableClusterSpec::ExactLength(2), 5)
                .options(SolverOptions::default().storage(StorageSpec::Memory)),
        ),
        (
            "top-3 TA, full week",
            QueryRequest::new(AlgorithmKind::Ta, StableClusterSpec::FullPaths, 3),
        ),
        (
            "top-5 sharded BFS (3 shards)",
            QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 5)
                .options(SolverOptions::default().shards(3)),
        ),
        (
            "top-4 auto-selected, length 3",
            QueryRequest::new(
                AlgorithmKind::Auto { budget_bytes: None },
                StableClusterSpec::ExactLength(3),
                4,
            ),
        ),
    ];
    for (label, request) in queries {
        let response = engine.query(request.clone()).expect("engine query");
        // The one-shot reference: build the same solver, solve directly.
        let mut reference = request
            .algorithm
            .build_with_options(
                request.spec,
                request.k,
                build.snapshot.num_intervals(),
                request.options,
            )
            .expect("reference solver");
        let expected = reference.solve_snapshot(&build.snapshot).expect("solve");
        check(&expected.paths, &response.solution.paths, label);
        println!(
            "{label}\n  -> {} paths, epoch {}, cached: {}, queue wait {} us, solve {} us",
            response.solution.paths.len(),
            response.epoch,
            response.cached,
            response.solution.stats.queue_wait_micros,
            response.solution.stats.solve_micros,
        );
        if let Some(best) = response.solution.paths.first() {
            let described: Vec<String> = best
                .nodes()
                .iter()
                .map(|n| {
                    let cluster = &build.interval_clusters[n.interval as usize][n.index as usize];
                    let rendered = cluster.render(&corpus.vocabulary);
                    let truncated: String = rendered.chars().take(48).collect();
                    let suffix = if rendered.chars().count() > 48 {
                        "…"
                    } else {
                        ""
                    };
                    format!("t{}: {truncated}{suffix}", n.interval)
                })
                .collect();
            println!("     best: {}", described.join(" => "));
        }
    }

    // Stream two more days in: each push publishes a new epoch; queries
    // after the swap see the grown graph, and the cache never leaks the old
    // epoch's answers.
    println!("\nstreaming two more days in...");
    let params = KlStableParams::new(5, 2);
    let mut online = OnlineStableClusters::new(params, build.snapshot.gap());
    for interval in 0..build.snapshot.num_intervals() as u32 {
        online.push_interval(build.snapshot.interval_parent_edges(interval));
    }
    // Two synthetic future days, wired to the last day's clusters.
    for day in 0..2 {
        let last = online.num_intervals() as u32 - 1;
        let nodes = 4u32;
        let parent_edges: Vec<Vec<(ClusterNodeId, f64)>> = (0..nodes)
            .map(|j| vec![(ClusterNodeId::new(last, j % 3), 0.6 + 0.1 * f64::from(j))])
            .collect();
        online.push_interval(parent_edges);
        let installed = engine.install(online.snapshot());
        let response = engine
            .query(QueryRequest::new(
                AlgorithmKind::Bfs,
                StableClusterSpec::ExactLength(2),
                5,
            ))
            .expect("post-swap query");
        let snapshot = engine.snapshot_cell().load();
        let mut reference = AlgorithmKind::Bfs
            .build(
                StableClusterSpec::ExactLength(2),
                5,
                snapshot.num_intervals(),
            )
            .expect("reference solver");
        let expected = reference.solve_snapshot(&snapshot).expect("solve");
        check(&expected.paths, &response.solution.paths, "post-swap query");
        println!(
            "  day +{}: epoch {} ({} intervals), fresh top path weight {:.3}",
            day + 1,
            installed.epoch(),
            snapshot.num_intervals(),
            response
                .solution
                .paths
                .first()
                .map(ClusterPath::weight)
                .unwrap_or(0.0),
        );
    }

    let stats = engine.stats();
    println!(
        "\nengine stats: {} queries ({} errors), cache {}/{} entries, {} hits / {} misses, \
         {} invalidated on swap",
        stats.queries,
        stats.errors,
        stats.cache.entries,
        stats.cache.capacity,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.invalidations,
    );
    println!("  queue wait: {}", stats.queue_wait.summary());
    println!("  solve:      {}", stats.solve.summary());
    println!("\nall engine answers byte-identical to the one-shot solves");
}

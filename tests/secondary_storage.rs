//! Integration tests for the secondary-storage paths: the disk-based
//! variants of every algorithm must produce exactly the same answers as their
//! in-memory counterparts — under *every* storage backend — and the
//! external-sort pair counter must agree with the hash-map counter on a
//! realistic corpus.
//!
//! The `BSC_STORAGE_BACKEND` environment variable (a
//! [`StorageSpec`]-`parse`able string) selects the backend exercised by the
//! env-pinned tests; CI runs this binary once per backend so a regression in
//! one backend cannot hide behind the default.

use blogstable::core::bfs::{BfsConfig, BfsStableClusters};
use blogstable::core::dfs::{DfsConfig, DfsStableClusters};
use blogstable::core::problem::KlStableParams;
use blogstable::core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use blogstable::corpus::pairs::{PairCountConfig, PairCounter};
use blogstable::graph::biconnected::BiconnectedComponents;
use blogstable::graph::csr::CsrGraph;
use blogstable::graph::keyword_graph::KeywordGraphBuilder;
use blogstable::graph::prune::PruneConfig;
use blogstable::prelude::*;
use blogstable::storage::external_sort::SortConfig;
use blogstable::storage::io_stats;
use blogstable::storage::io_stats::IoSnapshot;
use blogstable::storage::NodeStore;

/// The backend under test: `BSC_STORAGE_BACKEND` when set (CI runs the
/// matrix), the paper's log file otherwise.
fn spec_from_env() -> StorageSpec {
    match std::env::var("BSC_STORAGE_BACKEND") {
        Ok(name) => StorageSpec::parse(&name)
            .unwrap_or_else(|| panic!("unparseable BSC_STORAGE_BACKEND: {name:?}")),
        Err(_) => StorageSpec::LogFile,
    }
}

#[test]
fn external_pair_counting_matches_in_memory_on_synthetic_day() {
    let corpus =
        SyntheticBlogosphere::new(SyntheticConfig::small().with_posts_per_interval(150)).generate();
    let docs = corpus.timeline.documents(IntervalId(0));
    let in_memory = PairCounter::in_memory().count(docs).unwrap();
    let external = PairCounter::with_config(PairCountConfig {
        external: true,
        sort: SortConfig {
            max_records_in_memory: 256,
            merge_fan_in: 4,
        },
    })
    .count(docs)
    .unwrap();
    assert_eq!(in_memory.num_documents(), external.num_documents());
    assert_eq!(in_memory.num_keywords(), external.num_keywords());
    assert_eq!(in_memory.num_pairs(), external.num_pairs());
    for (u, v, count) in in_memory.iter_pairs() {
        assert_eq!(external.pair_count(u, v), count);
    }
}

#[test]
fn spillable_biconnected_components_match_in_memory_on_pruned_graph() {
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    let docs = corpus.timeline.documents(IntervalId(2));
    let counts = PairCounter::in_memory().count(docs).unwrap();
    let graph = KeywordGraphBuilder::from_pair_counts(&counts);
    let (pruned, _) = PruneConfig::paper().with_min_pair_count(3).prune(&graph);
    let csr = CsrGraph::from_pruned(&pruned);

    let in_memory = BiconnectedComponents::default().run(&csr).unwrap();
    let spilled = BiconnectedComponents::with_memory_limit(4)
        .run(&csr)
        .unwrap();
    assert_eq!(in_memory.articulation_points, spilled.articulation_points);
    let normalize = |result: &blogstable::graph::biconnected::BiconnectedResult| {
        let mut sets: Vec<Vec<u32>> = result
            .components
            .iter()
            .enumerate()
            .map(|(i, _)| {
                result
                    .component_vertices(&csr, i)
                    .into_iter()
                    .collect::<Vec<_>>()
            })
            .collect();
        sets.sort();
        sets
    };
    assert_eq!(normalize(&in_memory), normalize(&spilled));
}

#[test]
fn store_backed_bfs_and_dfs_match_in_memory_and_perform_io() {
    let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 5,
        nodes_per_interval: 20,
        avg_out_degree: 3,
        gap: 1,
        seed: 99,
    })
    .generate();
    let params = KlStableParams::new(5, 3);
    let spec = spec_from_env();

    let before = io_stats::global().snapshot();
    let bfs_stored = BfsStableClusters::with_config(params, BfsConfig::store_backed(spec))
        .run(&graph)
        .unwrap();
    let dfs_stored =
        DfsStableClusters::with_config(params, DfsConfig::default().with_storage(spec))
            .run(&graph)
            .unwrap();
    let io = io_stats::global().snapshot().delta(&before);
    if spec != StorageSpec::Memory {
        // The memory backend is the one backend that legitimately performs
        // no real I/O; every file-backed one must account for it.
        assert!(io.read_ops > 0, "{spec} should report read I/O");
        assert!(io.write_ops > 0, "{spec} should report write I/O");
    }

    let bfs_memory = BfsStableClusters::new(params).run(&graph).unwrap();
    let dfs_memory = DfsStableClusters::with_config(params, DfsConfig::in_memory())
        .run(&graph)
        .unwrap();
    assert_eq!(bfs_stored.len(), bfs_memory.len());
    assert_eq!(dfs_stored.len(), dfs_memory.len());
    for (a, b) in bfs_stored.iter().zip(bfs_memory.iter()) {
        assert!((a.weight() - b.weight()).abs() < 1e-9);
    }
    for (a, b) in dfs_stored.iter().zip(dfs_memory.iter()) {
        assert!((a.weight() - b.weight()).abs() < 1e-9);
    }
}

/// The acceptance bar of the storage redesign: BFS(store-backed) and DFS
/// return *byte-identical* `Solution` paths under every shipped backend.
#[test]
fn all_backends_produce_byte_identical_solutions() {
    let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 6,
        nodes_per_interval: 18,
        avg_out_degree: 3,
        gap: 1,
        seed: 424,
    })
    .generate();
    // A deliberately tiny block-cache budget so eviction paths are on.
    let backends = [
        StorageSpec::Memory,
        StorageSpec::LogFile,
        StorageSpec::BlockCache { budget_bytes: 2048 },
    ];
    for l in [2, 4] {
        let params = KlStableParams::new(5, l);
        let mut bfs_reference: Option<Vec<ClusterPath>> = None;
        let mut dfs_reference: Option<Vec<ClusterPath>> = None;
        for spec in backends {
            let bfs = BfsStableClusters::with_config(params, BfsConfig::store_backed(spec))
                .run(&graph)
                .unwrap();
            let dfs =
                DfsStableClusters::with_config(params, DfsConfig::default().with_storage(spec))
                    .run(&graph)
                    .unwrap();
            for (reference, got, algo) in [
                (&mut bfs_reference, bfs, "bfs"),
                (&mut dfs_reference, dfs, "dfs"),
            ] {
                match reference {
                    None => *reference = Some(got),
                    Some(expected) => {
                        assert_eq!(expected.len(), got.len(), "{algo} l={l} {spec}");
                        for (a, b) in expected.iter().zip(got.iter()) {
                            assert_eq!(a.nodes(), b.nodes(), "{algo} l={l} {spec}");
                            assert_eq!(
                                a.weight().to_bits(),
                                b.weight().to_bits(),
                                "{algo} l={l} {spec}: weights must be byte-identical"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Every backend's own `io_snapshot` counters must be monotone under a
/// workload of interleaved puts and gets through the typed `NodeStore`.
#[test]
fn backend_io_snapshots_are_monotone() {
    for spec in [
        StorageSpec::Memory,
        StorageSpec::LogFile,
        StorageSpec::BlockCache { budget_bytes: 1024 },
    ] {
        let mut store: NodeStore<u64, Vec<u64>> = NodeStore::temp(spec, "monotone").unwrap();
        let mut previous = store.backend().io_snapshot();
        for round in 0..20u64 {
            for key in 0..25u64 {
                store.put(&key, &vec![round; 12]).unwrap();
            }
            for key in (0..25u64).step_by(3) {
                assert_eq!(store.get(&key).unwrap(), Some(vec![round; 12]), "{spec}");
            }
            let snapshot = store.backend().io_snapshot();
            let monotone = |now: u64, before: u64| now >= before;
            assert!(
                monotone(snapshot.read_ops, previous.read_ops)
                    && monotone(snapshot.write_ops, previous.write_ops)
                    && monotone(snapshot.seek_ops, previous.seek_ops)
                    && monotone(snapshot.bytes_read, previous.bytes_read)
                    && monotone(snapshot.bytes_written, previous.bytes_written)
                    && monotone(snapshot.evictions, previous.evictions),
                "{spec}: counters must never decrease ({previous:?} -> {snapshot:?})"
            );
            previous = snapshot;
        }
        assert!(previous.write_ops > 0, "{spec}: writes must be accounted");
        assert!(previous.read_ops > 0, "{spec}: reads must be accounted");
        // Compaction keeps accounting monotone too.
        store.compact().unwrap();
        let after = store.backend().io_snapshot();
        assert!(after.write_ops >= previous.write_ops, "{spec}");
    }
}

/// A block cache with a starvation budget must evict (visibly in the
/// backend's `IoSnapshot`) yet still answer byte-identically; a roomy budget
/// must not evict at all.
#[test]
fn block_cache_budget_controls_evictions_not_answers() {
    let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 5,
        nodes_per_interval: 15,
        avg_out_degree: 3,
        gap: 0,
        seed: 7,
    })
    .generate();
    let params = KlStableParams::new(4, 3);
    let run = |budget_bytes: usize| -> (Vec<ClusterPath>, IoSnapshot) {
        let before = io_stats::global().snapshot();
        let paths = DfsStableClusters::with_config(
            params,
            DfsConfig::default().with_storage(StorageSpec::BlockCache { budget_bytes }),
        )
        .run(&graph)
        .unwrap();
        (paths, io_stats::global().snapshot().delta(&before))
    };
    // Two 4 KiB pages: small enough to thrash, big enough to admit pages
    // (a budget below one page size caches nothing and so evicts nothing).
    // The eviction assertion reads the process-global counters, so it is a
    // monotone smoke only (concurrent tests can add but never remove
    // evictions); the authoritative budget/eviction accounting check runs on
    // backend-local counters in bsc-storage's
    // `block_cache_respects_budget_and_reports_evictions` unit test.
    let (tight_paths, tight_io) = run(8192);
    let (roomy_paths, _) = run(64 << 20);
    assert!(
        tight_io.evictions > 0,
        "an 8 KiB budget must evict: {tight_io:?}"
    );
    assert_eq!(tight_paths.len(), roomy_paths.len());
    for (a, b) in tight_paths.iter().zip(roomy_paths.iter()) {
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.weight().to_bits(), b.weight().to_bits());
    }
}

#[test]
fn dfs_memory_footprint_is_bounded_by_the_stack() {
    // The motivation for DFS: it only keeps the stack in memory. Verify the
    // reported peak stack depth is bounded by the number of intervals while
    // BFS holds many more paths resident.
    let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 8,
        nodes_per_interval: 40,
        avg_out_degree: 4,
        gap: 0,
        seed: 5,
    })
    .generate();
    let params = KlStableParams::full_paths(3, 8);
    let (_, dfs_stats) = DfsStableClusters::with_config(params, DfsConfig::in_memory())
        .run_with_stats(&graph)
        .unwrap();
    let (_, bfs_stats) = BfsStableClusters::new(params)
        .run_with_stats(&graph)
        .unwrap();
    assert!(dfs_stats.peak_stack_depth <= graph.num_intervals() + 1);
    assert!(
        bfs_stats.peak_resident_paths > dfs_stats.peak_stack_depth,
        "BFS should hold more state in memory than the DFS stack"
    );
}

//! Integration tests for the secondary-storage paths: the disk-based
//! variants of every algorithm must produce exactly the same answers as their
//! in-memory counterparts, and the external-sort pair counter must agree with
//! the hash-map counter on a realistic corpus.

use blogstable::core::bfs::{BfsConfig, BfsStableClusters};
use blogstable::core::dfs::{DfsConfig, DfsStableClusters};
use blogstable::core::problem::KlStableParams;
use blogstable::core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use blogstable::corpus::pairs::{PairCountConfig, PairCounter};
use blogstable::graph::biconnected::BiconnectedComponents;
use blogstable::graph::csr::CsrGraph;
use blogstable::graph::keyword_graph::KeywordGraphBuilder;
use blogstable::graph::prune::PruneConfig;
use blogstable::prelude::*;
use blogstable::storage::external_sort::SortConfig;
use blogstable::storage::io_stats;

#[test]
fn external_pair_counting_matches_in_memory_on_synthetic_day() {
    let corpus =
        SyntheticBlogosphere::new(SyntheticConfig::small().with_posts_per_interval(150)).generate();
    let docs = corpus.timeline.documents(IntervalId(0));
    let in_memory = PairCounter::in_memory().count(docs).unwrap();
    let external = PairCounter::with_config(PairCountConfig {
        external: true,
        sort: SortConfig {
            max_records_in_memory: 256,
            merge_fan_in: 4,
        },
    })
    .count(docs)
    .unwrap();
    assert_eq!(in_memory.num_documents(), external.num_documents());
    assert_eq!(in_memory.num_keywords(), external.num_keywords());
    assert_eq!(in_memory.num_pairs(), external.num_pairs());
    for (u, v, count) in in_memory.iter_pairs() {
        assert_eq!(external.pair_count(u, v), count);
    }
}

#[test]
fn spillable_biconnected_components_match_in_memory_on_pruned_graph() {
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    let docs = corpus.timeline.documents(IntervalId(2));
    let counts = PairCounter::in_memory().count(docs).unwrap();
    let graph = KeywordGraphBuilder::from_pair_counts(&counts);
    let (pruned, _) = PruneConfig::paper().with_min_pair_count(3).prune(&graph);
    let csr = CsrGraph::from_pruned(&pruned);

    let in_memory = BiconnectedComponents::default().run(&csr).unwrap();
    let spilled = BiconnectedComponents::with_memory_limit(4)
        .run(&csr)
        .unwrap();
    assert_eq!(in_memory.articulation_points, spilled.articulation_points);
    let normalize = |result: &blogstable::graph::biconnected::BiconnectedResult| {
        let mut sets: Vec<Vec<u32>> = result
            .components
            .iter()
            .enumerate()
            .map(|(i, _)| {
                result
                    .component_vertices(&csr, i)
                    .into_iter()
                    .collect::<Vec<_>>()
            })
            .collect();
        sets.sort();
        sets
    };
    assert_eq!(normalize(&in_memory), normalize(&spilled));
}

#[test]
fn on_disk_bfs_and_dfs_match_in_memory_and_perform_io() {
    let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 5,
        nodes_per_interval: 20,
        avg_out_degree: 3,
        gap: 1,
        seed: 99,
    })
    .generate();
    let params = KlStableParams::new(5, 3);

    let before = io_stats::global().snapshot();
    let bfs_disk = BfsStableClusters::with_config(params, BfsConfig::on_disk())
        .run(&graph)
        .unwrap();
    let dfs_disk = DfsStableClusters::new(params).run(&graph).unwrap();
    let io = io_stats::global().snapshot().delta(&before);
    assert!(io.read_ops > 0, "disk variants should report read I/O");
    assert!(io.write_ops > 0, "disk variants should report write I/O");

    let bfs_memory = BfsStableClusters::new(params).run(&graph).unwrap();
    let dfs_memory = DfsStableClusters::with_config(params, DfsConfig::in_memory())
        .run(&graph)
        .unwrap();
    assert_eq!(bfs_disk.len(), bfs_memory.len());
    assert_eq!(dfs_disk.len(), dfs_memory.len());
    for (a, b) in bfs_disk.iter().zip(bfs_memory.iter()) {
        assert!((a.weight() - b.weight()).abs() < 1e-9);
    }
    for (a, b) in dfs_disk.iter().zip(dfs_memory.iter()) {
        assert!((a.weight() - b.weight()).abs() < 1e-9);
    }
}

#[test]
fn dfs_memory_footprint_is_bounded_by_the_stack() {
    // The motivation for DFS: it only keeps the stack in memory. Verify the
    // reported peak stack depth is bounded by the number of intervals while
    // BFS holds many more paths resident.
    let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 8,
        nodes_per_interval: 40,
        avg_out_degree: 4,
        gap: 0,
        seed: 5,
    })
    .generate();
    let params = KlStableParams::full_paths(3, 8);
    let (_, dfs_stats) = DfsStableClusters::with_config(params, DfsConfig::in_memory())
        .run_with_stats(&graph)
        .unwrap();
    let (_, bfs_stats) = BfsStableClusters::new(params)
        .run_with_stats(&graph)
        .unwrap();
    assert!(dfs_stats.peak_stack_depth <= graph.num_intervals() + 1);
    assert!(
        bfs_stats.peak_resident_paths > dfs_stats.peak_stack_depth,
        "BFS should hold more state in memory than the DFS stack"
    );
}

//! Sharded-solve conformance: partitioning the interval axis must never
//! change a single bit of the answer.
//!
//! The acceptance bar is byte-identical [`Solution`] paths (node sequences
//! *and* `f64` weight bits) for shards ∈ {1, 2, 3, 8} × every storage
//! backend × every inner algorithm that supports the query, compared against
//! the unsharded solve of the same algorithm.
//!
//! Env pins, mirroring the `BSC_STORAGE_BACKEND` loop CI already runs:
//! `BSC_SHARDS` and `BSC_THREADS` select the configuration exercised by the
//! env-pinned tests, and CI runs this binary across
//! threads ∈ {1, 2, 4} × shards ∈ {1, 3} so determinism cannot regress
//! behind the single-thread, single-shard default.

use blogstable::core::solver::AlgorithmKind;
use blogstable::core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use blogstable::core::ClusterGraph;
use blogstable::prelude::*;

/// The shard count under test: `BSC_SHARDS` when set (CI runs the matrix),
/// 3 otherwise.
fn shards_from_env() -> usize {
    match std::env::var("BSC_SHARDS") {
        Ok(value) => value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable BSC_SHARDS: {value:?}")),
        Err(_) => 3,
    }
}

/// The thread count under test: `BSC_THREADS` when set, 2 otherwise.
fn threads_from_env() -> usize {
    match std::env::var("BSC_THREADS") {
        Ok(value) => value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable BSC_THREADS: {value:?}")),
        Err(_) => 2,
    }
}

fn generate(m: usize, n: u32, d: u32, g: u32, seed: u64) -> ClusterGraph {
    ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: m,
        nodes_per_interval: n,
        avg_out_degree: d,
        gap: g,
        seed,
    })
    .generate()
}

fn assert_identical(expected: &[ClusterPath], got: &[ClusterPath], context: &str) {
    assert_eq!(expected.len(), got.len(), "{context}: result counts differ");
    for (a, b) in expected.iter().zip(got.iter()) {
        assert_eq!(a.nodes(), b.nodes(), "{context}: node sequences differ");
        assert_eq!(
            a.weight().to_bits(),
            b.weight().to_bits(),
            "{context}: weights must be byte-identical"
        );
    }
}

/// The acceptance matrix: shards ∈ {1, 2, 3, 8} × all three storage
/// backends, BFS and DFS inner solvers, subpath and full-path specs — all
/// byte-identical to the unsharded solve.
#[test]
fn sharded_solutions_are_byte_identical_across_shards_and_backends() {
    let graph = generate(9, 14, 3, 1, 4242);
    let m = graph.num_intervals();
    for (kind, spec) in [
        (AlgorithmKind::Bfs, StableClusterSpec::ExactLength(3)),
        (AlgorithmKind::Bfs, StableClusterSpec::FullPaths),
        (AlgorithmKind::Dfs, StableClusterSpec::ExactLength(4)),
    ] {
        let mut reference = kind.build(spec, 5, m).expect("unsharded build");
        let expected = reference.solve(&graph).expect("unsharded solve").paths;
        assert!(!expected.is_empty(), "{kind} {spec:?}: trivial workload");
        for storage in StorageSpec::ALL {
            for shards in [1usize, 2, 3, 8] {
                let options = SolverOptions::default().storage(storage).shards(shards);
                let mut solver: Box<dyn StableClusterSolver> = if shards > 1 {
                    kind.build_with_options(spec, 5, m, options)
                        .expect("sharded build")
                } else {
                    // shards = 1 through the explicit solver, so the
                    // decomposition itself (not just the wrapping) is
                    // exercised against the plain solve.
                    Box::new(ShardedSolver::new(kind, spec, 5, options).expect("sharded solver"))
                };
                let solution = solver.solve(&graph).expect("sharded solve");
                assert_identical(
                    &expected,
                    &solution.paths,
                    &format!("{kind} {spec:?} {storage} shards={shards}"),
                );
            }
        }
    }
}

/// TA only materializes full paths unsharded; per-start windows make every
/// exact-length query full-length, so sharded TA answers subpath queries —
/// and agrees with BFS on the result set.
#[test]
fn sharded_ta_serves_subpath_queries() {
    let graph = generate(8, 10, 3, 0, 77);
    let spec = StableClusterSpec::ExactLength(3);
    let mut bfs = AlgorithmKind::Bfs
        .build(spec, 4, graph.num_intervals())
        .expect("bfs build");
    let expected = bfs.solve(&graph).expect("bfs solve").paths;
    for shards in [1usize, 2, 8] {
        let mut ta = ShardedSolver::new(
            AlgorithmKind::Ta,
            spec,
            4,
            SolverOptions::default().shards(shards),
        )
        .expect("sharded TA");
        let solution = ta.solve(&graph).expect("sharded TA solve");
        assert_eq!(expected.len(), solution.paths.len(), "shards={shards}");
        for (a, b) in expected.iter().zip(solution.paths.iter()) {
            assert_eq!(a.nodes(), b.nodes(), "shards={shards}");
            assert!(
                (a.weight() - b.weight()).abs() < 1e-9,
                "shards={shards}: {} vs {}",
                a.weight(),
                b.weight()
            );
        }
    }
}

/// The env-pinned configuration (threads × shards from the CI matrix) must
/// reproduce the single-thread single-shard pipeline output bit for bit.
#[test]
fn env_pinned_threads_and_shards_match_the_default_pipeline() {
    let shards = shards_from_env();
    let threads = threads_from_env();
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    let baseline = Pipeline::new(PipelineParams::default().exact_length(2))
        .expect("valid baseline params")
        .run(&corpus)
        .expect("baseline pipeline");
    let pinned = Pipeline::new(
        PipelineParams::default()
            .exact_length(2)
            .threads(threads)
            .shards(shards),
    )
    .unwrap_or_else(|e| panic!("threads={threads} shards={shards}: {e}"))
    .run(&corpus)
    .expect("pinned pipeline");
    assert_identical(
        &baseline.stable_paths,
        &pinned.stable_paths,
        &format!("pipeline threads={threads} shards={shards}"),
    );
    if shards > 1 {
        assert!(pinned.solver_stats.shards > 0, "sharded stats not reported");
    }
}

/// `AlgorithmKind::Auto` end to end: unlimited budget resolves to BFS-grade
/// answers, a sharded Auto resolves per window, and an unsatisfiable budget
/// surfaces as `BscError`, not a panic.
#[test]
fn auto_policy_flows_through_pipeline_and_sharding() {
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    let baseline = Pipeline::new(PipelineParams::default().exact_length(2))
        .expect("valid params")
        .run(&corpus)
        .expect("baseline");
    let auto = Pipeline::new(
        PipelineParams::default()
            .exact_length(2)
            .algorithm(AlgorithmKind::Auto { budget_bytes: None }),
    )
    .expect("auto params validate")
    .run(&corpus)
    .expect("auto pipeline");
    assert_identical(&baseline.stable_paths, &auto.stable_paths, "auto unlimited");

    let sharded_auto = Pipeline::new(
        PipelineParams::default()
            .exact_length(2)
            .algorithm(AlgorithmKind::Auto { budget_bytes: None })
            .shards(shards_from_env()),
    )
    .expect("sharded auto params validate")
    .run(&corpus)
    .expect("sharded auto pipeline");
    assert_identical(
        &baseline.stable_paths,
        &sharded_auto.stable_paths,
        "auto sharded",
    );

    // One byte of budget cannot hold any solver: a clean error, no panic.
    let err = Pipeline::new(PipelineParams::default().exact_length(2).algorithm(
        AlgorithmKind::Auto {
            budget_bytes: Some(1),
        },
    ))
    .expect("validation cannot see the graph yet")
    .run(&corpus)
    .unwrap_err();
    assert!(matches!(err, BscError::InvalidConfig(_)), "{err}");
}

/// Pipeline validation of the sharding knob: zero shards and Problem 2 ×
/// sharding are rejected up front.
#[test]
fn pipeline_validates_the_shards_knob() {
    assert!(matches!(
        Pipeline::new(PipelineParams::default().shards(0)).unwrap_err(),
        BscError::InvalidConfig(_)
    ));
    assert!(matches!(
        Pipeline::new(PipelineParams::default().normalized(2).shards(2)).unwrap_err(),
        BscError::Unsupported {
            algorithm: "sharded",
            ..
        }
    ));
    // Problem 2 unsharded stays fine.
    assert!(Pipeline::new(PipelineParams::default().normalized(2).shards(1)).is_ok());
}

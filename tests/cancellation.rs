//! Deadline and cancellation conformance across every query entry point.
//!
//! The contract under test: a query whose deadline has already expired
//! returns [`BscError::DeadlineExceeded`] from *every* surface — the
//! one-shot [`Pipeline`], the pooled [`QueryEngine`], the serve protocol
//! (engine and oracle sessions byte-identically) and the distributed
//! coordinator — without solving; a mid-solve cancellation terminates the
//! solver within one checkpoint interval (promptly, not at the end of the
//! solve); and a far-future deadline changes no byte of any answer.

use std::time::{Duration, Instant};

use blogstable::cluster::{WorkerConfig, WorkerHandle, WorkerServer};
use blogstable::core::distributed::FanoutSpec;
use blogstable::core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use blogstable::core::ClusterGraph;
use blogstable::prelude::*;
use blogstable::service::{EngineConfig, Session};

fn generate(m: usize, n: u32, d: u32, g: u32, seed: u64) -> ClusterGraph {
    ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: m,
        nodes_per_interval: n,
        avg_out_degree: d,
        gap: g,
        seed,
    })
    .generate()
}

fn is_deadline(err: &BscError) -> bool {
    matches!(err, BscError::DeadlineExceeded { .. })
}

/// Entry point 1: the one-shot pipeline. An expired deadline surfaces as
/// `DeadlineExceeded` before any solving; a generous one changes nothing.
#[test]
fn pipeline_honors_deadlines() {
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    let err = Pipeline::new(
        PipelineParams::default()
            .exact_length(2)
            .deadline(Some(Duration::ZERO)),
    )
    .expect("valid params")
    .run(&corpus)
    .unwrap_err();
    assert!(is_deadline(&err), "expected DeadlineExceeded, got {err}");

    let baseline = Pipeline::new(PipelineParams::default().exact_length(2))
        .expect("valid params")
        .run(&corpus)
        .expect("baseline run");
    let with_deadline = Pipeline::new(
        PipelineParams::default()
            .exact_length(2)
            .deadline(Some(Duration::from_secs(3600))),
    )
    .expect("valid params")
    .run(&corpus)
    .expect("deadline run");
    assert_eq!(
        baseline.stable_paths.len(),
        with_deadline.stable_paths.len()
    );
    for (a, b) in baseline
        .stable_paths
        .iter()
        .zip(with_deadline.stable_paths.iter())
    {
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(
            a.weight().to_bits(),
            b.weight().to_bits(),
            "a far-future deadline must not change a byte of the answer"
        );
    }
}

/// Entry point 2: every algorithm behind the unified solver seam — and the
/// sharded wrapper — fails fast on an expired deadline.
#[test]
fn every_solver_fails_fast_on_an_expired_deadline() {
    let graph = generate(6, 12, 3, 1, 7);
    let m = graph.num_intervals();
    for kind in AlgorithmKind::ALL {
        let spec = match kind {
            AlgorithmKind::Ta => StableClusterSpec::FullPaths,
            AlgorithmKind::Normalized => StableClusterSpec::Normalized { l_min: 2 },
            _ => StableClusterSpec::ExactLength(3),
        };
        let begun = Instant::now();
        let err = kind
            .build_with_options(
                spec,
                4,
                m,
                SolverOptions::default().deadline(Some(Duration::ZERO)),
            )
            .expect("build")
            .solve(&graph)
            .unwrap_err();
        assert!(
            is_deadline(&err),
            "{kind}: expected DeadlineExceeded, got {err}"
        );
        assert!(
            begun.elapsed() < Duration::from_secs(1),
            "{kind}: fail-fast took {:?}",
            begun.elapsed()
        );
    }
    // Sharded: the expired token reaches every shard.
    let err = ShardedSolver::new(
        AlgorithmKind::Bfs,
        StableClusterSpec::ExactLength(3),
        4,
        SolverOptions::default()
            .shards(3)
            .deadline(Some(Duration::ZERO)),
    )
    .expect("sharded build")
    .solve(&graph)
    .unwrap_err();
    assert!(is_deadline(&err), "sharded: got {err}");
}

/// Mid-solve cancellation: cancel from another thread while the solver is
/// deep in its inner loops; it must return `DeadlineExceeded` within one
/// checkpoint interval — promptly, not after finishing the solve.
#[test]
fn mid_solve_cancellation_is_prompt() {
    // Big enough that a full solve takes meaningfully longer than the
    // cancellation latency we assert.
    let graph = generate(10, 60, 6, 1, 31);
    let token = CancelToken::new();
    let solver_token = token.clone();
    let handle = std::thread::spawn(move || {
        AlgorithmKind::Bfs
            .build_with_options(
                StableClusterSpec::FullPaths,
                32,
                10,
                SolverOptions::default().cancel_token(Some(solver_token)),
            )
            .expect("build")
            .solve(&graph)
    });
    std::thread::sleep(Duration::from_millis(20));
    let cancelled_at = Instant::now();
    token.cancel();
    let outcome = handle.join().expect("solver must not panic");
    let latency = cancelled_at.elapsed();
    match outcome {
        // The solve may legitimately have finished before the cancel.
        Ok(_) => {}
        Err(err) => {
            assert!(is_deadline(&err), "got {err}");
            assert!(
                latency < Duration::from_secs(2),
                "cancellation took {latency:?} — checkpoints are not firing"
            );
        }
    }
}

/// Entry point 3: the serve protocol. Engine and oracle sessions answer an
/// expired `deadline_ms` with byte-identical error responses, and answer a
/// far-future `deadline_ms` byte-identically to the no-deadline query.
#[test]
fn serve_sessions_answer_deadlines_byte_identically() {
    let mut engine = Session::engine(EngineConfig::default().workers(2)).unwrap();
    let mut oracle = Session::oracle();
    let load =
        "{\"op\":\"load\",\"num_intervals\":5,\"nodes_per_interval\":10,\"avg_out_degree\":3,\"gap\":1,\"seed\":42}";
    let expired =
        "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"exact:2\",\"k\":4,\"deadline_ms\":0}";
    let generous =
        "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"exact:2\",\"k\":4,\"deadline_ms\":3600000}";
    let plain = "{\"op\":\"query\",\"algorithm\":\"bfs\",\"spec\":\"exact:2\",\"k\":4}";
    let drive = |session: &mut Session, line: &str| -> String {
        let (response, cont) = session.handle_line(line);
        assert!(cont, "session ended early on {line}");
        response.expect("response expected")
    };
    for line in [load, expired, generous, plain] {
        let from_engine = drive(&mut engine, line);
        let from_oracle = drive(&mut oracle, line);
        assert_eq!(from_engine, from_oracle, "diverged on {line}");
    }
    let expired_response = drive(&mut engine, expired);
    assert!(
        expired_response.contains("\"ok\":false") && expired_response.contains("deadline exceeded"),
        "expected a deadline error: {expired_response}"
    );
    let generous_response = drive(&mut engine, generous);
    let plain_response = drive(&mut engine, plain);
    assert_eq!(
        generous_response, plain_response,
        "a far-future deadline must not change a byte of the answer"
    );
    // The engine's stats count the deadline hits (the oracle has no
    // counters — its stats response only names its mode).
    let stats = drive(&mut engine, "{\"op\":\"stats\"}");
    let doc = bsc_util::json::parse(&stats).unwrap();
    assert!(doc.get("deadline_hits").unwrap().as_u64().unwrap() >= 2);
}

/// Entry point 4: the distributed coordinator. An expired deadline is
/// answered locally (no worker round-trip: zero solves on the fleet); a
/// generous one fans out and answers byte-identically to the local solve.
#[test]
fn coordinator_honors_deadlines() {
    blogstable::cluster::install_transport();
    let graph = generate(8, 12, 3, 1, 4242);
    let m = graph.num_intervals();
    let handles: Vec<WorkerHandle> = (0..2)
        .map(|_| {
            WorkerServer::bind("127.0.0.1:0", WorkerConfig::default())
                .expect("bind worker")
                .spawn()
        })
        .collect();
    let fanout = FanoutSpec::new(handles.iter().map(|h| h.addr().to_string()).collect())
        .expect("worker set");

    let err = AlgorithmKind::Bfs
        .build_with_options(
            StableClusterSpec::ExactLength(3),
            5,
            m,
            SolverOptions::default()
                .fanout(Some(fanout.clone()))
                .deadline(Some(Duration::ZERO)),
        )
        .expect("build")
        .solve(&graph)
        .unwrap_err();
    assert!(is_deadline(&err), "got {err}");
    let fleet_solves: u64 = handles.iter().map(|h| h.solves()).sum();
    assert_eq!(
        fleet_solves, 0,
        "an expired deadline must not reach the workers"
    );

    let expected = AlgorithmKind::Bfs
        .build(StableClusterSpec::ExactLength(3), 5, m)
        .expect("local build")
        .solve(&graph)
        .expect("local solve")
        .paths;
    let distributed = AlgorithmKind::Bfs
        .build_with_options(
            StableClusterSpec::ExactLength(3),
            5,
            m,
            SolverOptions::default()
                .fanout(Some(fanout))
                .deadline(Some(Duration::from_secs(3600))),
        )
        .expect("build")
        .solve(&graph)
        .expect("distributed solve under a generous deadline")
        .paths;
    assert_eq!(expected.len(), distributed.len());
    for (a, b) in expected.iter().zip(distributed.iter()) {
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.weight().to_bits(), b.weight().to_bits());
    }
    drop(handles);
}

/// The reference oracle solver honors cancellation too, so serve-vs-oracle
/// comparisons stay fair under deadlines.
#[test]
fn exhaustive_oracle_fails_fast_on_an_expired_deadline() {
    let graph = generate(5, 8, 2, 0, 3);
    let err = ExhaustiveSolver::new(StableClusterSpec::ExactLength(2), 3)
        .with_cancel(Some(CancelToken::after(Duration::ZERO)))
        .solve(&graph)
        .unwrap_err();
    assert!(is_deadline(&err), "got {err}");
}

//! Distributed fan-out conformance: running the shard windows on worker
//! *processes* must never change a single bit of the answer.
//!
//! The acceptance bar mirrors `sharded_solve.rs`: byte-identical
//! [`Solution`] paths (node sequences *and* `f64` weight bits) for worker
//! counts ∈ {1, 2, 3, 8} × every storage backend, compared against the
//! in-process [`ShardedSolver`] — including while a worker is killed
//! mid-solve (the coordinator re-dispatches its windows), and a clean
//! [`BscError::Cluster`] (never a hang) when every worker is down.
//!
//! Workers here are in-process [`WorkerServer`]s on 127.0.0.1 ephemeral
//! ports: real TCP, real wire codecs, real failover — one process, so the
//! test stays hermetic. `crates/service/tests/distributed_serve.rs` runs
//! the same story across actual OS processes, and the CI `distributed` job
//! diffs coordinator transcripts against single-process output.

use blogstable::cluster::{WorkerConfig, WorkerHandle, WorkerServer};
use blogstable::core::distributed::FanoutSpec;
use blogstable::core::solver::AlgorithmKind;
use blogstable::core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use blogstable::core::ClusterGraph;
use blogstable::prelude::*;

fn generate(m: usize, n: u32, d: u32, g: u32, seed: u64) -> ClusterGraph {
    ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: m,
        nodes_per_interval: n,
        avg_out_degree: d,
        gap: g,
        seed,
    })
    .generate()
}

fn spawn_workers(count: usize, config: WorkerConfig) -> (Vec<WorkerHandle>, FanoutSpec) {
    let handles: Vec<WorkerHandle> = (0..count)
        .map(|_| {
            WorkerServer::bind("127.0.0.1:0", config.clone())
                .expect("bind worker")
                .spawn()
        })
        .collect();
    let spec = FanoutSpec::new(handles.iter().map(|h| h.addr().to_string()).collect())
        .expect("nonempty worker set");
    (handles, spec)
}

fn assert_identical(expected: &[ClusterPath], got: &[ClusterPath], context: &str) {
    assert_eq!(expected.len(), got.len(), "{context}: result counts differ");
    for (a, b) in expected.iter().zip(got.iter()) {
        assert_eq!(a.nodes(), b.nodes(), "{context}: node sequences differ");
        assert_eq!(
            a.weight().to_bits(),
            b.weight().to_bits(),
            "{context}: weights must be byte-identical"
        );
    }
}

/// The acceptance matrix: worker counts {1, 2, 3, 8} × all three storage
/// backends × BFS/DFS × subpath and full-path specs, byte-identical to the
/// in-process sharded solve of the same query.
#[test]
fn distributed_solutions_are_byte_identical_across_workers_and_backends() {
    blogstable::cluster::install_transport();
    let graph = generate(9, 12, 3, 1, 4242);
    let m = graph.num_intervals();
    // One fleet of 8; prefixes of it give the smaller worker counts.
    let (handles, full_spec) = spawn_workers(8, WorkerConfig::default());
    for (kind, spec, l) in [
        (AlgorithmKind::Bfs, StableClusterSpec::ExactLength(3), 3),
        (
            AlgorithmKind::Bfs,
            StableClusterSpec::FullPaths,
            m as u32 - 1,
        ),
        (AlgorithmKind::Dfs, StableClusterSpec::ExactLength(4), 4),
    ] {
        let mut reference = ShardedSolver::new(kind, spec, 5, SolverOptions::default().shards(3))
            .expect("sharded reference");
        let expected = reference.solve(&graph).expect("sharded solve").paths;
        assert!(!expected.is_empty(), "{kind} {spec:?}: trivial workload");
        for storage in StorageSpec::ALL {
            for workers in [1usize, 2, 3, 8] {
                let fanout =
                    FanoutSpec::new(full_spec.workers[..workers].to_vec()).expect("prefix");
                let options = SolverOptions::default()
                    .storage(storage)
                    .fanout(Some(fanout));
                let mut solver = kind
                    .build_with_options(spec, 5, m, options)
                    .expect("distributed build");
                let solution = solver.solve(&graph).expect("distributed solve");
                assert_identical(
                    &expected,
                    &solution.paths,
                    &format!("{kind} {spec:?} {storage} workers={workers}"),
                );
                let starts = m - l as usize;
                assert_eq!(
                    solution.stats.shards,
                    workers.min(starts),
                    "stats must report the fan-out width"
                );
            }
        }
    }
    drop(handles);
}

/// The full corpus pipeline with a fan-out worker set produces the same
/// stable paths as the purely local pipeline.
#[test]
fn fanned_out_pipeline_matches_the_local_pipeline() {
    blogstable::cluster::install_transport();
    let (handles, fanout) = spawn_workers(3, WorkerConfig::default());
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    let baseline = Pipeline::new(PipelineParams::default().exact_length(2))
        .expect("valid baseline params")
        .run(&corpus)
        .expect("baseline pipeline");
    let distributed = Pipeline::new(
        PipelineParams::default()
            .exact_length(2)
            .fanout(Some(fanout)),
    )
    .expect("valid distributed params")
    .run(&corpus)
    .expect("distributed pipeline");
    assert_identical(
        &baseline.stable_paths,
        &distributed.stable_paths,
        "pipeline fan-out",
    );
    drop(handles);
}

/// Fault injection: one worker drops its connection mid-solve (no response,
/// no shutdown handshake — indistinguishable from `kill -9`). The
/// coordinator must re-dispatch its windows and still produce the
/// byte-identical answer.
#[test]
fn worker_killed_mid_solve_is_redispatched_byte_identically() {
    blogstable::cluster::install_transport();
    let graph = generate(10, 12, 3, 1, 99);
    let spec = StableClusterSpec::ExactLength(3);
    let mut reference = ShardedSolver::new(
        AlgorithmKind::Bfs,
        spec,
        6,
        SolverOptions::default().shards(3),
    )
    .expect("sharded reference");
    let expected = reference.solve(&graph).expect("sharded solve").paths;

    // The dying worker answers two solves, then drops the connection with
    // no response and stops accepting — mid-fan-out, since every worker
    // gets more than two windows here.
    let dying = WorkerServer::bind(
        "127.0.0.1:0",
        WorkerConfig {
            die_after_solves: Some(2),
        },
    )
    .expect("bind dying worker")
    .spawn();
    let (healthy, _) = spawn_workers(2, WorkerConfig::default());
    let mut addrs = vec![dying.addr().to_string()];
    addrs.extend(healthy.iter().map(|h| h.addr().to_string()));
    let fanout = FanoutSpec::new(addrs).expect("worker set");

    let mut solver = AlgorithmKind::Bfs
        .build_with_options(
            spec,
            6,
            graph.num_intervals(),
            SolverOptions::default().fanout(Some(fanout)),
        )
        .expect("distributed build");
    let solution = solver.solve(&graph).expect("survives the worker death");
    assert_identical(&expected, &solution.paths, "fault-injected fan-out");
    drop(healthy);
    drop(dying);
}

/// Every worker down: a clean `BscError::Cluster` naming the exhaustion,
/// never a hang or a panic.
#[test]
fn all_workers_down_is_a_clean_error_not_a_hang() {
    blogstable::cluster::install_transport();
    let (mut handles, fanout) = spawn_workers(2, WorkerConfig::default());
    for handle in &mut handles {
        handle.kill();
    }
    let graph = generate(6, 8, 2, 0, 5);
    let started = std::time::Instant::now();
    let err = AlgorithmKind::Bfs
        .build_with_options(
            StableClusterSpec::ExactLength(2),
            3,
            graph.num_intervals(),
            SolverOptions::default().fanout(Some(fanout)),
        )
        .expect("build succeeds; failure surfaces at solve time")
        .solve(&graph)
        .unwrap_err();
    assert!(
        matches!(err, BscError::Cluster(_)),
        "expected a Cluster error, got {err}"
    );
    assert!(err.to_string().contains("workers exhausted"), "{err}");
    // "Fail, don't hang": bounded retry with backoff, well under a minute.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(60),
        "exhaustion took {:?}",
        started.elapsed()
    );
}

/// Problem 2 does not decompose across start intervals; a fan-out request
/// for it is rejected up front, at parameter validation.
#[test]
fn normalized_fanout_is_rejected_at_validation() {
    let (_handles, fanout) = spawn_workers(1, WorkerConfig::default());
    let err =
        Pipeline::new(PipelineParams::default().normalized(2).fanout(Some(fanout))).unwrap_err();
    assert!(
        matches!(
            err,
            BscError::Unsupported {
                algorithm: "distributed",
                ..
            }
        ),
        "{err}"
    );
}

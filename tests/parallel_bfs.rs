//! Parallel BFS conformance: the scoped-thread interval sweep must produce
//! results identical to the sequential solver for every thread count, on
//! synthetic graphs of varying shape (m, n, d, g), and must be deterministic
//! across repeated runs.

use blogstable::core::bfs::{BfsConfig, BfsStableClusters};
use blogstable::core::pipeline::{Pipeline, PipelineParams};
use blogstable::core::problem::{KlStableParams, StableClusterSpec};
use blogstable::core::solver::AlgorithmKind;
use blogstable::core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use blogstable::core::ClusterGraph;

fn generate(m: usize, n: u32, d: u32, g: u32, seed: u64) -> ClusterGraph {
    ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: m,
        nodes_per_interval: n,
        avg_out_degree: d,
        gap: g,
        seed,
    })
    .generate()
}

/// Graph shapes covering the paper's parameter axes: interval count m,
/// nodes per interval n, out-degree d and gap g.
fn shapes() -> Vec<(usize, u32, u32, u32)> {
    vec![
        (4, 10, 2, 0),
        (6, 25, 4, 1),
        (5, 40, 5, 2),
        (8, 15, 3, 1),
        (10, 8, 2, 0),
    ]
}

#[test]
fn parallel_equals_sequential_for_all_thread_counts() {
    for (shape_index, (m, n, d, g)) in shapes().into_iter().enumerate() {
        let graph = generate(m, n, d, g, 9_000 + shape_index as u64);
        let full_l = (m - 1) as u32;
        for l in [1, full_l / 2, full_l] {
            if l == 0 {
                continue;
            }
            let params = KlStableParams::new(5, l);
            let (seq_paths, seq_stats) = BfsStableClusters::new(params)
                .run_with_stats(&graph)
                .expect("sequential run");
            for threads in [1usize, 2, 8] {
                let (par_paths, par_stats) = BfsStableClusters::with_config(
                    params,
                    BfsConfig::default().with_threads(threads),
                )
                .run_with_stats(&graph)
                .expect("parallel run");
                // Identical paths: node sequences AND bit-identical weights
                // (ClusterPath's PartialEq compares both).
                assert_eq!(
                    seq_paths, par_paths,
                    "m={m} n={n} d={d} g={g} l={l} threads={threads}"
                );
                // Stats are counted before the admission fast path, so they
                // are thread-count independent too.
                assert_eq!(
                    seq_stats.paths_generated, par_stats.paths_generated,
                    "m={m} n={n} d={d} g={g} l={l} threads={threads}"
                );
                assert_eq!(seq_stats.nodes_processed, par_stats.nodes_processed);
                assert_eq!(par_stats.threads_used, threads);
            }
        }
    }
}

/// The env-pinned configuration: `BSC_THREADS` (and `BSC_SHARDS` for the
/// sharded sibling suite) are set by the CI matrix so determinism cannot
/// regress behind the single-thread default. Unset, the test pins 4 threads.
#[test]
fn env_pinned_thread_count_matches_sequential() {
    let threads: usize = match std::env::var("BSC_THREADS") {
        Ok(value) => value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable BSC_THREADS: {value:?}")),
        Err(_) => 4,
    };
    let graph = generate(6, 30, 4, 1, 321);
    let params = KlStableParams::new(5, 3);
    let (seq_paths, _) = BfsStableClusters::new(params)
        .run_with_stats(&graph)
        .expect("sequential run");
    let (par_paths, par_stats) =
        BfsStableClusters::with_config(params, BfsConfig::default().with_threads(threads))
            .run_with_stats(&graph)
            .expect("env-pinned run");
    assert_eq!(seq_paths, par_paths, "threads={threads}");
    assert_eq!(par_stats.threads_used, threads);
}

#[test]
fn parallel_runs_are_deterministic() {
    let graph = generate(7, 30, 4, 1, 123);
    let params = KlStableParams::new(6, 4);
    let config = BfsConfig::default().with_threads(8);
    let (first, first_stats) = BfsStableClusters::with_config(params, config)
        .run_with_stats(&graph)
        .expect("first run");
    let (second, second_stats) = BfsStableClusters::with_config(params, config)
        .run_with_stats(&graph)
        .expect("second run");
    assert_eq!(first, second, "two identical runs must agree byte-for-byte");
    assert_eq!(first_stats, second_stats);
}

#[test]
fn threads_flow_through_the_solver_trait_and_pipeline() {
    let graph = generate(5, 20, 3, 1, 77);
    let spec = StableClusterSpec::FullPaths;
    let mut seq = AlgorithmKind::Bfs
        .build(spec, 4, graph.num_intervals())
        .expect("sequential build");
    let mut par = AlgorithmKind::Bfs
        .build_with_threads(spec, 4, graph.num_intervals(), 8)
        .expect("parallel build");
    let seq_solution = seq.solve(&graph).expect("sequential solve");
    let par_solution = par.solve(&graph).expect("parallel solve");
    assert_eq!(seq_solution.paths, par_solution.paths);
    assert_eq!(seq_solution.stats.threads, 1);
    assert_eq!(par_solution.stats.threads, 8);

    // PipelineParams::threads is validated and produces identical output.
    assert!(Pipeline::new(PipelineParams::default().threads(0)).is_err());
    let one = Pipeline::new(PipelineParams::default().exact_length(2).threads(1))
        .expect("threads(1) is valid");
    let eight = Pipeline::new(PipelineParams::default().exact_length(2).threads(8))
        .expect("threads(8) is valid");
    let corpus = blogstable::corpus::synthetic::SyntheticBlogosphere::new(
        blogstable::corpus::synthetic::SyntheticConfig::small(),
    )
    .generate();
    let a = one.run(&corpus).expect("pipeline threads=1");
    let b = eight.run(&corpus).expect("pipeline threads=8");
    assert_eq!(a.stable_paths, b.stable_paths);
    assert_eq!(b.solver_stats.threads, 8);
}

//! Solver-conformance suite: every [`AlgorithmKind`] must agree with the
//! exhaustive oracle on randomly generated cluster graphs, exercised through
//! `Box<dyn StableClusterSolver>` — the same dynamic dispatch the pipeline
//! uses — verifying Claims 1 and 2 of the paper for every algorithm behind
//! the unified trait.

use blogstable::baselines::exhaustive::ExhaustiveSolver;
use blogstable::core::path::ClusterPath;
use blogstable::core::problem::{KlStableParams, StableClusterSpec};
use blogstable::core::solver::{AlgorithmKind, SolverOptions, StableClusterSolver};
use blogstable::core::streaming::OnlineStableClusters;
use blogstable::core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use blogstable::core::ClusterGraph;
use blogstable::storage::StorageSpec;

use bsc_util::DetRng;

fn generate(m: usize, n: u32, gap: u32, seed: u64) -> ClusterGraph {
    ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: m,
        nodes_per_interval: n,
        avg_out_degree: 2,
        gap,
        seed,
    })
    .generate()
}

/// Run one solver through the trait object, as the pipeline would.
fn solve(
    kind: AlgorithmKind,
    spec: StableClusterSpec,
    k: usize,
    graph: &ClusterGraph,
) -> Vec<ClusterPath> {
    let mut solver: Box<dyn StableClusterSolver> = kind
        .build(spec, k, graph.num_intervals())
        .expect("supported combination");
    solver.solve(graph).expect("solver run").paths
}

/// The ground truth for the same spec, also through the trait.
fn oracle(spec: StableClusterSpec, k: usize, graph: &ClusterGraph) -> Vec<ClusterPath> {
    let mut solver: Box<dyn StableClusterSolver> = Box::new(ExhaustiveSolver::new(spec, k));
    solver.solve(graph).expect("oracle run").paths
}

/// Score a path the way its spec orders results.
fn score(spec: StableClusterSpec, path: &ClusterPath) -> f64 {
    match spec {
        StableClusterSpec::Normalized { .. } => path.stability(),
        _ => path.weight(),
    }
}

/// Assert that `kind` and the oracle report identical top-k scores on
/// `graph`.
fn assert_matches_oracle(
    kind: AlgorithmKind,
    spec: StableClusterSpec,
    k: usize,
    graph: &ClusterGraph,
    context: &str,
) {
    let expected = oracle(spec, k, graph);
    let got = solve(kind, spec, k, graph);
    assert_eq!(
        expected.len(),
        got.len(),
        "{context} {kind} {spec:?}: result counts differ"
    );
    for (e, g) in expected.iter().zip(got.iter()) {
        let (e, g) = (score(spec, e), score(spec, g));
        assert!(
            (e - g).abs() < 1e-9,
            "{context} {kind} {spec:?}: {e} vs {g}"
        );
    }
}

/// Every algorithm that supports the spec, as trait objects would see them.
fn supporting(spec: StableClusterSpec, num_intervals: usize) -> Vec<AlgorithmKind> {
    AlgorithmKind::ALL
        .into_iter()
        .filter(|kind| kind.supports(spec, num_intervals))
        .collect()
}

#[test]
fn all_algorithms_match_oracle_on_full_paths() {
    for seed in 0..6 {
        for gap in [0, 1] {
            let graph = generate(4, 7, gap, 1000 + seed);
            let spec = StableClusterSpec::FullPaths;
            let kinds = supporting(spec, graph.num_intervals());
            assert_eq!(kinds.len(), 3, "BFS, DFS and TA all answer full paths");
            for kind in kinds {
                assert_matches_oracle(kind, spec, 4, &graph, &format!("seed={seed} gap={gap}"));
            }
        }
    }
}

#[test]
fn subpath_algorithms_match_oracle_on_exact_lengths() {
    for seed in 0..4 {
        let graph = generate(5, 6, 1, 2000 + seed);
        for l in [1, 2, 3, 4] {
            let spec = StableClusterSpec::ExactLength(l);
            let kinds = supporting(spec, graph.num_intervals());
            // TA joins in only when l covers the whole graph.
            assert_eq!(kinds.len(), if l == 4 { 3 } else { 2 });
            for kind in kinds {
                assert_matches_oracle(kind, spec, 3, &graph, &format!("seed={seed} l={l}"));
            }
        }
    }
}

#[test]
fn normalized_solver_matches_oracle() {
    for seed in 0..5 {
        let graph = generate(5, 5, 0, 4000 + seed);
        for l_min in [1, 2, 3] {
            let spec = StableClusterSpec::Normalized { l_min };
            let kinds = supporting(spec, graph.num_intervals());
            assert_eq!(kinds, vec![AlgorithmKind::Normalized]);
            for k in [1, 3] {
                assert_matches_oracle(
                    AlgorithmKind::Normalized,
                    spec,
                    k,
                    &graph,
                    &format!("seed={seed} l_min={l_min}"),
                );
            }
        }
    }
}

/// The disk-resident solver must match the oracle under every storage
/// backend, driven through the same `build_with_options` dispatch the
/// pipeline uses. `BSC_STORAGE_BACKEND` (when set, as in the CI matrix)
/// additionally pins one backend so a per-backend regression fails the suite
/// run dedicated to that backend.
#[test]
fn disk_resident_solvers_match_oracle_under_every_backend() {
    let mut backends: Vec<StorageSpec> = StorageSpec::ALL.to_vec();
    backends.push(StorageSpec::BlockCache { budget_bytes: 2048 });
    if let Ok(name) = std::env::var("BSC_STORAGE_BACKEND") {
        let pinned = StorageSpec::parse(&name)
            .unwrap_or_else(|| panic!("unparseable BSC_STORAGE_BACKEND: {name:?}"));
        if !backends.contains(&pinned) {
            backends.push(pinned);
        }
    }
    for seed in 0..3 {
        let graph = generate(5, 6, 1, 5000 + seed);
        for spec in [
            StableClusterSpec::FullPaths,
            StableClusterSpec::ExactLength(2),
        ] {
            let expected = oracle(spec, 4, &graph);
            for &backend in &backends {
                let mut solver = AlgorithmKind::Dfs
                    .build_with_options(
                        spec,
                        4,
                        graph.num_intervals(),
                        SolverOptions::default().storage(backend),
                    )
                    .expect("supported combination");
                let got = solver.solve(&graph).expect("solver run").paths;
                assert_eq!(
                    expected.len(),
                    got.len(),
                    "seed={seed} {spec:?} {backend}: result counts differ"
                );
                for (e, g) in expected.iter().zip(got.iter()) {
                    assert!(
                        (e.weight() - g.weight()).abs() < 1e-9,
                        "seed={seed} {spec:?} {backend}: {} vs {}",
                        e.weight(),
                        g.weight()
                    );
                }
            }
        }
    }
}

#[test]
fn streaming_agrees_with_oracle() {
    for seed in 0..4 {
        let graph = generate(6, 8, 1, 3000 + seed);
        let params = KlStableParams::new(4, 3);
        let expected = oracle(StableClusterSpec::ExactLength(3), 4, &graph);
        let online = OnlineStableClusters::replay(params, &graph).current_top_k();
        assert_eq!(expected.len(), online.len(), "seed={seed} streaming");
        for (e, g) in expected.iter().zip(online.iter()) {
            assert!(
                (e.weight() - g.weight()).abs() < 1e-9,
                "seed={seed} streaming: {} vs {}",
                e.weight(),
                g.weight()
            );
        }
    }
}

/// Randomized conformance sweep over graph shapes and specs (the successor
/// of the old proptest block, Claims 1 and 2): draw a random shape, then run
/// *every* algorithm that supports the drawn spec against the oracle.
#[test]
fn randomized_conformance_over_random_shapes() {
    let mut rng = DetRng::seed_from_u64(20_070_923);
    let mut checked = 0u32;
    for _ in 0..24 {
        let m = rng.range_inclusive(3, 5) as usize;
        let n = rng.range_inclusive(3, 7) as u32;
        let gap = rng.range_inclusive(0, 1) as u32;
        let k = rng.range_inclusive(1, 4) as usize;
        let graph = generate(m, n, gap, rng.next_u64());
        let max_l = (m - 1) as u32;
        let spec = match rng.index(3) {
            0 => StableClusterSpec::FullPaths,
            1 => StableClusterSpec::ExactLength(rng.range_inclusive(1, max_l as u64) as u32),
            _ => StableClusterSpec::Normalized {
                l_min: rng.range_inclusive(1, max_l as u64) as u32,
            },
        };
        for kind in supporting(spec, graph.num_intervals()) {
            assert_matches_oracle(
                kind,
                spec,
                k,
                &graph,
                &format!("m={m} n={n} gap={gap} k={k}"),
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 24,
        "sweep must exercise every drawn spec: {checked}"
    );
}

#[test]
fn unsupported_combinations_are_rejected_not_wrong() {
    let graph = generate(4, 5, 0, 77);
    // TA cannot answer short subpaths; it must refuse rather than return
    // wrong results.
    let err = AlgorithmKind::Ta
        .build(StableClusterSpec::ExactLength(1), 3, graph.num_intervals())
        .expect_err("TA must reject subpath specs");
    assert!(matches!(
        err,
        blogstable::core::BscError::Unsupported {
            algorithm: "ta",
            ..
        }
    ));
    // The normalized solver only answers Problem 2 and vice versa.
    assert!(AlgorithmKind::Normalized
        .build(StableClusterSpec::FullPaths, 3, graph.num_intervals())
        .is_err());
    assert!(AlgorithmKind::Bfs
        .build(
            StableClusterSpec::Normalized { l_min: 2 },
            3,
            graph.num_intervals()
        )
        .is_err());
}

//! Cross-crate integration tests: the three kl-stable-cluster algorithms
//! (BFS, DFS, TA), the streaming variant and the normalized solver all agree
//! with the exhaustive oracle on randomly generated cluster graphs —
//! verifying Claims 1 and 2 of the paper.

use blogstable::baselines::exhaustive::{exhaustive_normalized_top_k, exhaustive_top_k};
use blogstable::core::bfs::BfsStableClusters;
use blogstable::core::dfs::{DfsConfig, DfsStableClusters};
use blogstable::core::normalized::NormalizedStableClusters;
use blogstable::core::problem::{KlStableParams, NormalizedParams};
use blogstable::core::streaming::OnlineStableClusters;
use blogstable::core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use blogstable::core::ta::TaStableClusters;

use proptest::prelude::*;

fn weights(paths: &[blogstable::core::path::ClusterPath]) -> Vec<f64> {
    paths.iter().map(|p| p.weight()).collect()
}

fn assert_same_weights(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: result counts differ");
    for (x, y) in a.iter().zip(b.iter()) {
        assert!((x - y).abs() < 1e-9, "{context}: {x} vs {y}");
    }
}

#[test]
fn bfs_dfs_ta_and_oracle_agree_on_full_paths() {
    for seed in 0..6 {
        for gap in [0, 1] {
            let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
                num_intervals: 4,
                nodes_per_interval: 7,
                avg_out_degree: 2,
                gap,
                seed: 1000 + seed,
            })
            .generate();
            let k = 4;
            let params = KlStableParams::full_paths(k, graph.num_intervals());
            let oracle = weights(&exhaustive_top_k(&graph, k, params.l));
            let bfs = weights(&BfsStableClusters::new(params).run(&graph).unwrap());
            let dfs = weights(
                &DfsStableClusters::with_config(params, DfsConfig::in_memory())
                    .run(&graph)
                    .unwrap(),
            );
            let ta = weights(&TaStableClusters::new(k).run(&graph).unwrap());
            let context = format!("seed={seed} gap={gap}");
            assert_same_weights(&oracle, &bfs, &format!("{context} bfs"));
            assert_same_weights(&oracle, &dfs, &format!("{context} dfs"));
            assert_same_weights(&oracle, &ta, &format!("{context} ta"));
        }
    }
}

#[test]
fn bfs_dfs_and_oracle_agree_on_subpaths() {
    for seed in 0..4 {
        let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
            num_intervals: 5,
            nodes_per_interval: 6,
            avg_out_degree: 2,
            gap: 1,
            seed: 2000 + seed,
        })
        .generate();
        for l in [1, 2, 3] {
            let params = KlStableParams::new(3, l);
            let oracle = weights(&exhaustive_top_k(&graph, 3, l));
            let bfs = weights(&BfsStableClusters::new(params).run(&graph).unwrap());
            let dfs = weights(
                &DfsStableClusters::with_config(params, DfsConfig::in_memory())
                    .run(&graph)
                    .unwrap(),
            );
            let context = format!("seed={seed} l={l}");
            assert_same_weights(&oracle, &bfs, &format!("{context} bfs"));
            assert_same_weights(&oracle, &dfs, &format!("{context} dfs"));
        }
    }
}

#[test]
fn streaming_agrees_with_batch_and_oracle() {
    for seed in 0..4 {
        let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
            num_intervals: 6,
            nodes_per_interval: 8,
            avg_out_degree: 2,
            gap: 1,
            seed: 3000 + seed,
        })
        .generate();
        let params = KlStableParams::new(4, 3);
        let oracle = weights(&exhaustive_top_k(&graph, 4, 3));
        let online = OnlineStableClusters::replay(params, &graph).current_top_k();
        assert_same_weights(&oracle, &weights(&online), &format!("seed={seed} streaming"));
    }
}

#[test]
fn normalized_top1_matches_oracle() {
    for seed in 0..5 {
        let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
            num_intervals: 5,
            nodes_per_interval: 5,
            avg_out_degree: 2,
            gap: 0,
            seed: 4000 + seed,
        })
        .generate();
        for l_min in [1, 2, 3] {
            let oracle = exhaustive_normalized_top_k(&graph, 1, l_min);
            let got = NormalizedStableClusters::new(NormalizedParams::new(1, l_min))
                .run(&graph)
                .unwrap();
            assert_eq!(oracle.len(), got.len(), "seed={seed} l_min={l_min}");
            if let (Some(a), Some(b)) = (oracle.first(), got.first()) {
                assert!(
                    (a.stability() - b.stability()).abs() < 1e-9,
                    "seed={seed} l_min={l_min}: {} vs {}",
                    a.stability(),
                    b.stability()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Claim 1 (BFS correctness) on random graph shapes.
    #[test]
    fn prop_bfs_matches_oracle(
        seed in 0u64..5000,
        n in 3u32..8,
        m in 3usize..6,
        gap in 0u32..2,
        l in 1u32..4,
        k in 1usize..5,
    ) {
        let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
            num_intervals: m,
            nodes_per_interval: n,
            avg_out_degree: 2,
            gap,
            seed,
        })
        .generate();
        prop_assume!(l <= m as u32 - 1);
        let oracle = weights(&exhaustive_top_k(&graph, k, l));
        let bfs = weights(&BfsStableClusters::new(KlStableParams::new(k, l)).run(&graph).unwrap());
        prop_assert_eq!(oracle.len(), bfs.len());
        for (a, b) in oracle.iter().zip(bfs.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Claim 2 (DFS correctness, with pruning and disk-resident state).
    #[test]
    fn prop_dfs_matches_oracle(
        seed in 5000u64..10000,
        n in 3u32..7,
        m in 3usize..6,
        l in 1u32..4,
        k in 1usize..4,
    ) {
        let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
            num_intervals: m,
            nodes_per_interval: n,
            avg_out_degree: 2,
            gap: 1,
            seed,
        })
        .generate();
        prop_assume!(l <= m as u32 - 1);
        let oracle = weights(&exhaustive_top_k(&graph, k, l));
        let dfs = weights(
            &DfsStableClusters::new(KlStableParams::new(k, l))
                .run(&graph)
                .unwrap(),
        );
        prop_assert_eq!(oracle.len(), dfs.len());
        for (a, b) in oracle.iter().zip(dfs.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}

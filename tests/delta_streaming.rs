//! Incremental-solve conformance (ISSUE 10): an engine fed by incremental
//! snapshot installs must answer every query **byte-identically** to a
//! cold one-shot solve of the same materialized graph — the delta path
//! (re-solve touched windows, splice the rest forward from the previous
//! epoch's window results) is an optimization, never a semantic.
//!
//! The matrix: randomized ingest schedules (4 `DetRng` seeds) × all five
//! algorithms × {memory, logfile, blockcache} backends × shard counts
//! {1, 3}, with checkpoints mid-ingest so later queries actually have a
//! prior epoch's windows to splice from. Also covered: queries whose
//! deadline expires mid-ingest (clean `DeadlineExceeded`, no poisoned
//! state), and fault-injected backends (byte-identical when the fault
//! schedule is dodged, the injected error otherwise).

use std::time::Duration;

use blogstable::core::problem::StableClusterSpec;
use blogstable::core::solver::AlgorithmKind;
use blogstable::prelude::*;
use bsc_util::DetRng;

fn assert_identical(expected: &[ClusterPath], got: &[ClusterPath], context: &str) {
    assert_eq!(expected.len(), got.len(), "{context}: result counts differ");
    for (a, b) in expected.iter().zip(got.iter()) {
        assert_eq!(a.nodes(), b.nodes(), "{context}: node sequences differ");
        assert_eq!(
            a.weight().to_bits(),
            b.weight().to_bits(),
            "{context}: weights must be byte-identical"
        );
    }
}

/// Push one randomly shaped interval: 3–6 nodes, each wired to every
/// in-gap predecessor node with probability ½ and a weight in `(0, 1]`
/// (the ingest contract — weights outside it panic).
fn push_random_interval(
    online: &mut OnlineStableClusters,
    rng: &mut DetRng,
    gap: u32,
    nodes_per_interval: &mut Vec<u32>,
) {
    let interval = nodes_per_interval.len() as u32;
    let nodes = 3 + rng.below(4) as u32;
    let mut parent_edges: Vec<Vec<(ClusterNodeId, f64)>> = (0..nodes).map(|_| Vec::new()).collect();
    let reach = gap + 1;
    for (node, edges) in parent_edges.iter_mut().enumerate() {
        let _ = node;
        for parent_interval in interval.saturating_sub(reach)..interval {
            for parent in 0..nodes_per_interval[parent_interval as usize] {
                if rng.chance(0.5) {
                    let weight = (rng.below(1000) + 1) as f64 / 1000.0;
                    edges.push((ClusterNodeId::new(parent_interval, parent), weight));
                }
            }
        }
    }
    nodes_per_interval.push(nodes);
    online.push_interval(parent_edges);
}

/// Every (algorithm, spec, backend, shards) combination under test — the
/// same matrix as the query-service conformance suite: TA only
/// materializes full paths unsharded, and the normalized solver (Problem
/// 2) does not decompose across shards (or epochs — it always re-solves).
fn combos() -> Vec<(AlgorithmKind, StableClusterSpec, StorageSpec, usize)> {
    let kinds = [
        AlgorithmKind::Bfs,
        AlgorithmKind::Dfs,
        AlgorithmKind::Ta,
        AlgorithmKind::Normalized,
        AlgorithmKind::Auto { budget_bytes: None },
    ];
    let mut combos = Vec::new();
    for kind in kinds {
        for backend in [
            StorageSpec::Memory,
            StorageSpec::LogFile,
            StorageSpec::BlockCache { budget_bytes: 4096 },
        ] {
            for shards in [1usize, 3] {
                let spec = match kind {
                    AlgorithmKind::Normalized => {
                        if shards > 1 {
                            continue;
                        }
                        StableClusterSpec::Normalized { l_min: 2 }
                    }
                    AlgorithmKind::Ta if shards == 1 => StableClusterSpec::FullPaths,
                    _ => StableClusterSpec::ExactLength(2),
                };
                combos.push((kind, spec, backend, shards));
            }
        }
    }
    combos
}

fn request(
    kind: AlgorithmKind,
    spec: StableClusterSpec,
    backend: StorageSpec,
    shards: usize,
) -> QueryRequest {
    QueryRequest::new(kind, spec, 5)
        .options(SolverOptions::default().storage(backend).shards(shards))
}

/// The cold reference: a fresh one-shot solver over the same graph with
/// the same options — no cache, no deltas, no prior epoch.
fn cold_solve(
    graph: &ClusterGraph,
    kind: AlgorithmKind,
    spec: StableClusterSpec,
    backend: StorageSpec,
    shards: usize,
) -> Vec<ClusterPath> {
    kind.build_with_options(
        spec,
        5,
        graph.num_intervals(),
        SolverOptions::default().storage(backend).shards(shards),
    )
    .expect("build cold solver")
    .solve(graph)
    .expect("cold solve")
    .paths
}

#[test]
fn incremental_engine_matches_cold_solves_across_random_ingest() {
    for seed in [11u64, 12, 13, 14] {
        let mut rng = DetRng::seed_from_u64(seed);
        let gap = 1;
        let mut online = OnlineStableClusters::new(KlStableParams::new(5, 2), gap);
        let mut nodes_per_interval = Vec::new();
        let engine = QueryEngine::new(EngineConfig::default().workers(2)).expect("engine starts");
        let mut spliced_anywhere = false;
        for round in 0..9 {
            push_random_interval(&mut online, &mut rng, gap, &mut nodes_per_interval);
            let snapshot = engine.install_incremental(online.snapshot());
            // Query checkpoints: early (few windows), mid, and final — the
            // later ones have resident window sets to splice from.
            if !matches!(round, 3 | 6 | 8) {
                continue;
            }
            let graph = snapshot.graph();
            for (kind, spec, backend, shards) in combos() {
                let context =
                    format!("seed={seed} round={round} {kind} {spec} {backend} shards={shards}");
                let expected = cold_solve(graph, kind, spec, backend, shards);
                let response = engine
                    .query(request(kind, spec, backend, shards))
                    .unwrap_or_else(|e| panic!("{context}: engine failed: {e}"));
                assert_eq!(response.epoch, snapshot.epoch(), "{context}");
                assert_identical(&expected, &response.solution.paths, &context);
                let stats = response.solution.stats;
                if stats.windows_spliced > 0 {
                    spliced_anywhere = true;
                    // A spliced solve did strictly less than a full
                    // windowed re-solve.
                    let total = graph.num_intervals() as u64 - 2;
                    assert!(
                        stats.windows_resolved < total,
                        "{context}: spliced yet resolved all {total} windows"
                    );
                }
            }
        }
        assert!(
            spliced_anywhere,
            "seed={seed}: no query ever spliced — the delta path never engaged"
        );
    }
}

#[test]
fn mid_ingest_deadline_expiry_is_clean_and_state_survives() {
    let mut rng = DetRng::seed_from_u64(41);
    let gap = 1;
    let mut online = OnlineStableClusters::new(KlStableParams::new(5, 2), gap);
    let mut nodes_per_interval = Vec::new();
    let engine = QueryEngine::new(EngineConfig::default().workers(2)).expect("engine starts");
    for _ in 0..4 {
        push_random_interval(&mut online, &mut rng, gap, &mut nodes_per_interval);
        engine.install_incremental(online.snapshot());
    }
    // Warm the window sets, then expire a query mid-ingest.
    let warm = request(
        AlgorithmKind::Bfs,
        StableClusterSpec::ExactLength(2),
        StorageSpec::Memory,
        1,
    );
    engine.query(warm).expect("warm query");
    push_random_interval(&mut online, &mut rng, gap, &mut nodes_per_interval);
    engine.install_incremental(online.snapshot());
    let expired = QueryRequest::new(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 5)
        .options(SolverOptions::default().deadline(Some(Duration::ZERO)));
    let err = engine.query(expired).expect_err("expired deadline");
    assert!(
        matches!(err, BscError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err}"
    );
    // The failure poisoned nothing: further ingest and queries still
    // match cold solves byte-for-byte (and the delta path still engages).
    push_random_interval(&mut online, &mut rng, gap, &mut nodes_per_interval);
    let snapshot = engine.install_incremental(online.snapshot());
    let graph = snapshot.graph();
    let expected = cold_solve(
        graph,
        AlgorithmKind::Bfs,
        StableClusterSpec::ExactLength(2),
        StorageSpec::Memory,
        1,
    );
    let response = engine
        .query(request(
            AlgorithmKind::Bfs,
            StableClusterSpec::ExactLength(2),
            StorageSpec::Memory,
            1,
        ))
        .expect("query after expiry");
    assert_identical(&expected, &response.solution.paths, "after expiry");
    assert!(
        response.solution.stats.windows_spliced > 0,
        "the delta path should still engage after a failed query"
    );
}

#[test]
fn fault_injected_backends_answer_identically_or_fail_cleanly() {
    let mut rng = DetRng::seed_from_u64(97);
    let gap = 1;
    let mut online = OnlineStableClusters::new(KlStableParams::new(5, 2), gap);
    let mut nodes_per_interval = Vec::new();
    let engine = QueryEngine::new(EngineConfig::default().workers(2)).expect("engine starts");
    let mut snapshot = None;
    for _ in 0..6 {
        push_random_interval(&mut online, &mut rng, gap, &mut nodes_per_interval);
        snapshot = Some(engine.install_incremental(online.snapshot()));
    }
    let snapshot = snapshot.expect("installed");
    let graph = snapshot.graph();
    let expected = cold_solve(
        graph,
        AlgorithmKind::Dfs,
        StableClusterSpec::ExactLength(2),
        StorageSpec::Memory,
        1,
    );
    let mut injected = 0u64;
    let mut clean = 0u64;
    for round in 0..8u64 {
        // Alternate tight and loose schedules: a 1-in-3 fault rate is all
        // but certain to fire on a multi-operation solve, a 1-in-500 rate
        // all but certain to be dodged — so both halves of the check run.
        // Seeds are fixed, so the split is deterministic either way.
        let storage = StorageSpec::Fault {
            seed: 1000 + round,
            every: if round % 2 == 0 { 3 } else { 500 },
            inner: FaultInner::LogFile,
        };
        let outcome = engine.query(
            QueryRequest::new(AlgorithmKind::Dfs, StableClusterSpec::ExactLength(2), 5).options(
                SolverOptions::default()
                    .storage(storage)
                    .bfs_store_backed(true),
            ),
        );
        match outcome {
            Ok(response) => {
                assert_identical(
                    &expected,
                    &response.solution.paths,
                    &format!("fault round {round}"),
                );
                clean += 1;
            }
            Err(error) => {
                assert!(
                    error.to_string().contains("injected storage fault"),
                    "round {round}: expected the injected fault, got: {error}"
                );
                injected += 1;
            }
        }
    }
    assert!(
        injected > 0,
        "the fault schedule never fired — the check is vacuous"
    );
    assert!(
        clean > 0,
        "every round faulted — the equivalence half never ran"
    );
}

//! Query-service conformance: the long-lived engine must answer every query
//! **byte-identically** to the one-shot `Pipeline::run` on the same graph.
//!
//! The acceptance bar (ISSUE 5): for every algorithm × storage backend ×
//! shard count {1, 3}, the engine's paths equal the pipeline's paths in
//! node sequences *and* `f64` weight bits — including under ≥ 4 concurrent
//! mixed-algorithm queries sharing one snapshot, and across a mid-stream
//! epoch swap (queries admitted before the swap answer against their pinned
//! epoch; queries admitted after answer against the new one).

use blogstable::core::problem::StableClusterSpec;
use blogstable::core::solver::AlgorithmKind;
use blogstable::prelude::*;
use blogstable::service::engine::EngineConfig;

fn small_corpus(seed: u64) -> blogstable::corpus::synthetic::GeneratedCorpus {
    SyntheticBlogosphere::new(SyntheticConfig::small().with_seed(seed)).generate()
}

fn assert_identical(expected: &[ClusterPath], got: &[ClusterPath], context: &str) {
    assert_eq!(expected.len(), got.len(), "{context}: result counts differ");
    for (a, b) in expected.iter().zip(got.iter()) {
        assert_eq!(a.nodes(), b.nodes(), "{context}: node sequences differ");
        assert_eq!(
            a.weight().to_bits(),
            b.weight().to_bits(),
            "{context}: weights must be byte-identical"
        );
    }
}

/// Every (algorithm, spec, backend, shards) combination under test. The
/// spec is chosen per algorithm: TA only materializes full paths unsharded
/// (inside per-start windows every exact-length query is full-length, so
/// sharded TA serves the subpath query); the normalized solver answers
/// Problem 2 and does not decompose across shards.
fn combos() -> Vec<(AlgorithmKind, StableClusterSpec, StorageSpec, usize)> {
    let kinds = [
        AlgorithmKind::Bfs,
        AlgorithmKind::Dfs,
        AlgorithmKind::Ta,
        AlgorithmKind::Normalized,
        AlgorithmKind::Auto { budget_bytes: None },
    ];
    let mut combos = Vec::new();
    for kind in kinds {
        for backend in StorageSpec::ALL {
            for shards in [1usize, 3] {
                let spec = match kind {
                    AlgorithmKind::Normalized => {
                        if shards > 1 {
                            continue; // Problem 2 does not decompose
                        }
                        StableClusterSpec::Normalized { l_min: 2 }
                    }
                    AlgorithmKind::Ta if shards == 1 => StableClusterSpec::FullPaths,
                    _ => StableClusterSpec::ExactLength(2),
                };
                combos.push((kind, spec, backend, shards));
            }
        }
    }
    combos
}

fn pipeline_params(
    kind: AlgorithmKind,
    spec: StableClusterSpec,
    backend: StorageSpec,
    shards: usize,
) -> PipelineParams {
    let params = PipelineParams::default()
        .algorithm(kind)
        .storage(backend)
        .shards(shards);
    match spec {
        StableClusterSpec::FullPaths => params.full_paths(),
        StableClusterSpec::ExactLength(l) => params.exact_length(l),
        StableClusterSpec::Normalized { l_min } => params.normalized(l_min),
    }
}

fn request(
    kind: AlgorithmKind,
    spec: StableClusterSpec,
    backend: StorageSpec,
    shards: usize,
) -> QueryRequest {
    QueryRequest::new(kind, spec, 10)
        .options(SolverOptions::default().storage(backend).shards(shards))
}

#[test]
fn engine_matches_pipeline_for_every_algorithm_backend_and_shard_count() {
    let corpus = small_corpus(7);
    let engine = QueryEngine::new(EngineConfig::default().workers(2)).expect("engine starts");
    let mut installed_epoch = None;
    for (kind, spec, backend, shards) in combos() {
        let context = format!("{kind} {spec} {backend} shards={shards}");
        let outcome = Pipeline::new(pipeline_params(kind, spec, backend, shards))
            .expect("valid params")
            .run(&corpus)
            .unwrap_or_else(|e| panic!("{context}: pipeline failed: {e}"));
        // The graph construction half is identical for every combination
        // (solver-stage knobs never change the graph); install it once and
        // serve every query from that single resident snapshot.
        if installed_epoch.is_none() {
            let snapshot = engine.install(outcome.cluster_graph.clone());
            assert!(
                snapshot.vocabulary().is_some(),
                "run() attaches the vocabulary"
            );
            installed_epoch = Some(snapshot.epoch());
        }
        let response = engine
            .query(request(kind, spec, backend, shards))
            .unwrap_or_else(|e| panic!("{context}: engine failed: {e}"));
        assert_eq!(Some(response.epoch), installed_epoch, "{context}");
        assert_identical(&outcome.stable_paths, &response.solution.paths, &context);
    }
    let stats = engine.stats();
    assert_eq!(stats.queries, combos().len() as u64);
    assert_eq!(stats.errors, 0);
}

#[test]
fn concurrent_mixed_algorithm_storm_is_byte_identical() {
    let corpus = small_corpus(7);
    // More in-flight queries than workers, workers > 1: genuinely
    // concurrent mixed-algorithm execution against one shared snapshot.
    let engine = QueryEngine::new(
        EngineConfig::default()
            .workers(4)
            .queue_capacity(128)
            .cache_capacity(0), // force every query to actually solve
    )
    .expect("engine starts");

    let mut expectations = Vec::new();
    for (kind, spec, backend, shards) in combos() {
        let outcome = Pipeline::new(pipeline_params(kind, spec, backend, shards))
            .expect("valid params")
            .run(&corpus)
            .expect("pipeline run");
        if expectations.is_empty() {
            engine.install(outcome.cluster_graph.clone());
        }
        expectations.push(((kind, spec, backend, shards), outcome.stable_paths));
    }

    // Two interleaved rounds of everything, submitted up front so the queue
    // stays saturated with mixed algorithms while the pool drains it.
    let mut tickets = Vec::new();
    for round in 0..2 {
        for ((kind, spec, backend, shards), _) in &expectations {
            let ticket = engine
                .submit(request(*kind, *spec, *backend, *shards))
                .expect("admission");
            tickets.push((round, (*kind, *spec, *backend, *shards), ticket));
        }
    }
    assert!(
        tickets.len() >= 4,
        "storm must exceed the concurrency requirement"
    );
    let mut zero_solve = 0u64;
    for (round, combo, ticket) in tickets {
        let (kind, spec, backend, shards) = combo;
        let context = format!("round {round}: {kind} {spec} {backend} shards={shards}");
        let response = ticket.wait().unwrap_or_else(|e| panic!("{context}: {e}"));
        let expected = &expectations
            .iter()
            .find(|(c, _)| *c == combo)
            .expect("expectation recorded")
            .1;
        assert_identical(expected, &response.solution.paths, &context);
        if response.solution.stats.solve_micros == 0 {
            zero_solve += 1;
        }
    }
    // The cache is disabled, so the only queries allowed to skip their own
    // window scan are the ones coalesced onto a concurrent duplicate's solve
    // (round 1 repeats round 0 exactly) — and those are byte-identity-checked
    // above like everything else.
    let stats = engine.stats();
    assert_eq!(stats.cache.hits, 0, "cache was disabled");
    assert_eq!(
        zero_solve, stats.coalesced,
        "every query either solved or was coalesced onto a live solve"
    );
}

#[test]
fn epoch_swap_mid_stream_pins_in_flight_queries_and_retargets_new_ones() {
    let corpus_a = small_corpus(7);
    let corpus_b = small_corpus(99);
    let engine = QueryEngine::new(
        EngineConfig::default()
            .workers(2)
            .queue_capacity(128)
            .cache_capacity(16),
    )
    .expect("engine starts");

    let combo_subset: Vec<(AlgorithmKind, StableClusterSpec, StorageSpec, usize)> = vec![
        (
            AlgorithmKind::Bfs,
            StableClusterSpec::ExactLength(2),
            StorageSpec::Memory,
            1,
        ),
        (
            AlgorithmKind::Dfs,
            StableClusterSpec::ExactLength(2),
            StorageSpec::Memory,
            1,
        ),
        (
            AlgorithmKind::Bfs,
            StableClusterSpec::ExactLength(2),
            StorageSpec::Memory,
            3,
        ),
        (
            AlgorithmKind::Auto { budget_bytes: None },
            StableClusterSpec::ExactLength(2),
            StorageSpec::Memory,
            1,
        ),
    ];
    let expect = |corpus: &blogstable::corpus::synthetic::GeneratedCorpus,
                  combo: &(AlgorithmKind, StableClusterSpec, StorageSpec, usize)| {
        let (kind, spec, backend, shards) = *combo;
        Pipeline::new(pipeline_params(kind, spec, backend, shards))
            .expect("valid params")
            .run(corpus)
            .expect("pipeline run")
    };

    let outcome_a = expect(&corpus_a, &combo_subset[0]);
    engine.install(outcome_a.cluster_graph.clone());

    // Admit a batch against epoch 1, swap to epoch 2 while they are (at
    // most partially) drained, then admit a second batch.
    let before: Vec<_> = combo_subset
        .iter()
        .map(|combo| {
            let (kind, spec, backend, shards) = *combo;
            (
                combo,
                engine.submit(request(kind, spec, backend, shards)).unwrap(),
            )
        })
        .collect();
    let outcome_b = expect(&corpus_b, &combo_subset[0]);
    engine.install(outcome_b.cluster_graph.clone());
    let after: Vec<_> = combo_subset
        .iter()
        .map(|combo| {
            let (kind, spec, backend, shards) = *combo;
            (
                combo,
                engine.submit(request(kind, spec, backend, shards)).unwrap(),
            )
        })
        .collect();

    for (combo, ticket) in before {
        let response = ticket.wait().expect("pre-swap query");
        assert_eq!(response.epoch, 1, "pinned at admission");
        let expected = expect(&corpus_a, combo);
        assert_identical(
            &expected.stable_paths,
            &response.solution.paths,
            &format!("pre-swap {combo:?}"),
        );
    }
    for (combo, ticket) in after {
        let response = ticket.wait().expect("post-swap query");
        assert_eq!(response.epoch, 2, "admitted after the swap");
        let expected = expect(&corpus_b, combo);
        assert_identical(
            &expected.stable_paths,
            &response.solution.paths,
            &format!("post-swap {combo:?}"),
        );
    }

    // The cache must never leak epoch-1 answers into epoch 2: a repeat of
    // the first combo is answered from the epoch-2 cache entry (or solved
    // fresh), never from epoch 1.
    let (kind, spec, backend, shards) = combo_subset[0];
    let repeat = engine.query(request(kind, spec, backend, shards)).unwrap();
    assert_eq!(repeat.epoch, 2);
    assert_identical(
        &expect(&corpus_b, &combo_subset[0]).stable_paths,
        &repeat.solution.paths,
        "post-swap repeat",
    );
}

#[test]
fn streamed_intervals_publish_epochs_queryable_through_the_engine() {
    // Online ingest → snapshot() → engine: after each published interval,
    // an engine query over the snapshot equals the batch solve over the
    // same graph-so-far, and the stream's own top-k agrees with the
    // engine's answer for the streamed length.
    let graph = ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 6,
        nodes_per_interval: 12,
        avg_out_degree: 3,
        gap: 1,
        seed: 2024,
    })
    .generate();
    let params = KlStableParams::new(5, 2);
    let engine = QueryEngine::new(EngineConfig::default().workers(2)).expect("engine starts");
    let mut online = OnlineStableClusters::new(params, graph.gap());
    for interval in 0..graph.num_intervals() as u32 {
        online.push_interval(graph.interval_parent_edges(interval));
        let installed = engine.install(online.snapshot());
        assert_eq!(installed.epoch(), u64::from(interval) + 1);

        if interval >= 2 {
            let response = engine
                .query(QueryRequest::new(
                    AlgorithmKind::Bfs,
                    StableClusterSpec::ExactLength(2),
                    5,
                ))
                .expect("engine query");
            let mut batch = AlgorithmKind::Bfs
                .build(StableClusterSpec::ExactLength(2), 5, interval as usize + 1)
                .unwrap();
            let snapshot = engine.snapshot_cell().load();
            let expected = batch.solve(&snapshot).unwrap();
            assert_identical(
                &expected.paths,
                &response.solution.paths,
                &format!("interval {interval}"),
            );
        }
    }
    assert_eq!(engine.epoch(), graph.num_intervals() as u64);
}

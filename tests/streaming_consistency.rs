//! Streaming/batch consistency: `OnlineStableClusters::replay` must report
//! the same top-k as the batch BFS solve over the same [`ClusterGraph`] —
//! node sequences and `f64` weight bits, not just approximate weights
//! (previously only a weight-tolerance check existed, inside the unit
//! suite). Also covers the replayed stream's `snapshot()`: solving the
//! materialized graph batch-style must reproduce the stream's own answer.

use blogstable::core::problem::StableClusterSpec;
use blogstable::core::solver::AlgorithmKind;
use blogstable::core::ClusterGraph;
use blogstable::prelude::*;

fn generate(m: usize, n: u32, d: u32, g: u32, seed: u64) -> ClusterGraph {
    ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: m,
        nodes_per_interval: n,
        avg_out_degree: d,
        gap: g,
        seed,
    })
    .generate()
}

fn assert_identical(expected: &[ClusterPath], got: &[ClusterPath], context: &str) {
    assert_eq!(expected.len(), got.len(), "{context}: result counts differ");
    for (a, b) in expected.iter().zip(got.iter()) {
        assert_eq!(a.nodes(), b.nodes(), "{context}: node sequences differ");
        assert_eq!(
            a.weight().to_bits(),
            b.weight().to_bits(),
            "{context}: weights must be byte-identical"
        );
    }
}

#[test]
fn replay_top_k_equals_the_batch_bfs_solve() {
    for seed in 0..4u64 {
        for gap in [0u32, 1, 2] {
            let graph = generate(6, 12, 3, gap, 300 + seed);
            for l in [2u32, 3, 5] {
                let context = format!("seed={seed} gap={gap} l={l}");
                let params = KlStableParams::new(4, l);
                let mut batch = AlgorithmKind::Bfs
                    .build(
                        StableClusterSpec::ExactLength(l),
                        params.k,
                        graph.num_intervals(),
                    )
                    .expect("batch solver");
                let expected = batch.solve(&graph).expect("batch solve").paths;
                let online = OnlineStableClusters::replay(params, &graph).current_top_k();
                assert_identical(&expected, &online, &context);
            }
        }
    }
}

#[test]
fn replay_agrees_with_every_problem_one_solver() {
    // The online stream is interchangeable with the whole batch family,
    // not just BFS: DFS and the exhaustive oracle agree too.
    let graph = generate(5, 10, 3, 1, 77);
    let params = KlStableParams::new(5, 3);
    let online = OnlineStableClusters::replay(params, &graph).current_top_k();
    for kind in [AlgorithmKind::Bfs, AlgorithmKind::Dfs] {
        let mut solver = kind
            .build(StableClusterSpec::ExactLength(3), 5, graph.num_intervals())
            .expect("solver");
        let batch = solver.solve(&graph).expect("solve").paths;
        assert_identical(&batch, &online, kind.name());
    }
    let mut oracle = ExhaustiveSolver::new(StableClusterSpec::ExactLength(3), params.k);
    let expected = oracle.solve(&graph).expect("oracle").paths;
    assert_identical(&expected, &online, "exhaustive oracle");
}

#[test]
fn batch_solving_the_streams_snapshot_reproduces_the_streams_answer() {
    // Stream → snapshot() → batch BFS must close the loop: the graph the
    // stream materializes yields exactly the top-k the stream reported.
    for (m, n, d, g, seed) in [(6, 12, 3, 1, 11u64), (7, 8, 2, 0, 12), (5, 15, 4, 2, 13)] {
        let graph = generate(m, n, d, g, seed);
        let params = KlStableParams::new(4, 2);
        let mut online = OnlineStableClusters::replay(params, &graph);
        let streamed = online.current_top_k();
        let snapshot = online.snapshot();
        assert_eq!(snapshot.epoch(), m as u64);
        let mut batch = AlgorithmKind::Bfs
            .build(
                StableClusterSpec::ExactLength(2),
                4,
                snapshot.num_intervals(),
            )
            .expect("batch solver");
        let from_snapshot = batch
            .solve_snapshot(&snapshot)
            .expect("solve over snapshot")
            .paths;
        assert_identical(&streamed, &from_snapshot, &format!("seed={seed}"));
    }
}

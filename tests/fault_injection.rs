//! Seeded fault-injection conformance: every algorithm, run over every
//! storage backend wrapped in the deterministic
//! [`FaultInjectingBackend`], must surface injected I/O errors as clean
//! [`BscError`]s — never a panic, never a silently wrong top-k. Runs that
//! dodge the fault schedule entirely must return the byte-identical
//! fault-free answer.
//!
//! The fault schedule is a pure function of the seed, so CI pins
//! `BSC_FAULT_SEED` and any failure reproduces locally with the same
//! value. The companion sweep truncates a log file at every byte of its
//! tail and proves [`LogFileBackend::open`] recovers a consistent prefix
//! every time.

use std::panic::{catch_unwind, AssertUnwindSafe};

use blogstable::core::synthetic::{ClusterGraphGenerator, SyntheticGraphParams};
use blogstable::core::ClusterGraph;
use blogstable::prelude::*;
use blogstable::storage::temp::TempDir;
use blogstable::storage::LogFileBackend;

/// Base seed of the deterministic fault schedules: `BSC_FAULT_SEED` when
/// set (CI pins it; reuse the value to reproduce a CI failure), 42
/// otherwise.
fn fault_seed() -> u64 {
    match std::env::var("BSC_FAULT_SEED") {
        Ok(seed) => seed
            .parse()
            .unwrap_or_else(|_| panic!("unparseable BSC_FAULT_SEED: {seed:?}")),
        Err(_) => 42,
    }
}

fn graph() -> ClusterGraph {
    ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 6,
        nodes_per_interval: 14,
        avg_out_degree: 3,
        gap: 1,
        seed: 4242,
    })
    .generate()
}

/// The compatible (spec, k) for each algorithm: TA answers full paths
/// only, the normalized solver answers Problem 2 only.
fn spec_for(kind: AlgorithmKind, m: usize) -> StableClusterSpec {
    match kind {
        AlgorithmKind::Ta => StableClusterSpec::FullPaths,
        AlgorithmKind::Normalized => StableClusterSpec::Normalized { l_min: 2 },
        _ => {
            let _ = m;
            StableClusterSpec::ExactLength(3)
        }
    }
}

/// The matrix: every algorithm × every inner backend × several seeds, each
/// solve running against storage that fails roughly one operation in
/// three. Every outcome must be either the byte-identical fault-free
/// answer or a clean error that names the injected fault — and the
/// schedule must actually fire for the disk-resident algorithms, or the
/// sweep proves nothing.
#[test]
fn every_algorithm_survives_injected_storage_faults() {
    let graph = graph();
    let m = graph.num_intervals();
    let base = fault_seed();
    let inners = [
        FaultInner::Memory,
        FaultInner::LogFile,
        FaultInner::BlockCache { budget_bytes: 4096 },
    ];
    let mut injected_errors = 0u64;
    for kind in AlgorithmKind::ALL {
        let spec = spec_for(kind, m);
        // The fault-free reference answer for this algorithm.
        let expected = kind
            .build_with_options(spec, 5, m, SolverOptions::default().bfs_store_backed(true))
            .expect("build reference")
            .solve(&graph)
            .expect("fault-free solve")
            .paths;
        for inner in inners {
            for round in 0..4u64 {
                let storage = StorageSpec::Fault {
                    seed: base.wrapping_add(round),
                    every: 3,
                    inner,
                };
                let options = SolverOptions::default()
                    .storage(storage)
                    .bfs_store_backed(true);
                let context = format!("{kind} {storage}");
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    kind.build_with_options(spec, 5, m, options)?.solve(&graph)
                }))
                .unwrap_or_else(|_| panic!("{context}: solver panicked under injected faults"));
                match outcome {
                    Ok(solution) => {
                        // Dodged the schedule: the answer must be the
                        // byte-identical fault-free one.
                        assert_eq!(expected.len(), solution.paths.len(), "{context}");
                        for (a, b) in expected.iter().zip(solution.paths.iter()) {
                            assert_eq!(a.nodes(), b.nodes(), "{context}");
                            assert_eq!(a.weight().to_bits(), b.weight().to_bits(), "{context}");
                        }
                    }
                    Err(error) => {
                        let rendered = error.to_string();
                        assert!(
                            rendered.contains("injected storage fault"),
                            "{context}: expected the injected fault, got: {rendered}"
                        );
                        injected_errors += 1;
                    }
                }
            }
        }
    }
    // The disk-resident algorithms touch storage on every solve; at one
    // fault per ~3 operations the schedule cannot miss them all.
    assert!(
        injected_errors > 0,
        "the fault schedule never fired — the matrix is vacuous"
    );
}

/// A sharded solve under injected faults: the failing shard's error must
/// surface cleanly through the shard merge (and cancel its siblings), not
/// panic or produce a partial top-k presented as complete.
#[test]
fn sharded_solves_surface_injected_faults_cleanly() {
    let graph = graph();
    let m = graph.num_intervals();
    let base = fault_seed();
    let mut saw_error = false;
    for round in 0..6u64 {
        let storage = StorageSpec::Fault {
            seed: base.wrapping_add(round),
            every: 3,
            inner: FaultInner::LogFile,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            AlgorithmKind::Dfs
                .build_with_options(
                    StableClusterSpec::ExactLength(3),
                    5,
                    m,
                    SolverOptions::default().storage(storage).shards(3),
                )?
                .solve(&graph)
        }))
        .expect("sharded solve panicked under injected faults");
        if let Err(error) = outcome {
            assert!(
                error.to_string().contains("injected storage fault"),
                "unexpected error: {error}"
            );
            saw_error = true;
        }
    }
    assert!(saw_error, "no shard ever tripped the fault schedule");
}

/// Crash-recovery sweep: truncate a log file at *every* byte position in
/// its tail region and reopen. Every cut must recover: the reopened store
/// answers cleanly, and every surviving key maps to exactly the value
/// last put under it (a consistent prefix of the log, never garbage).
#[test]
fn log_reopen_recovers_a_consistent_prefix_at_every_truncation_point() {
    let dir = TempDir::new("fault-reopen").unwrap();
    let full = dir.file("full.log");
    let mut backend = LogFileBackend::create(&full).unwrap();
    for i in 0..24u32 {
        let key = i.to_le_bytes();
        backend
            .put(&key, &vec![i as u8; 1 + (i as usize % 17)])
            .unwrap();
    }
    // A few overwrites and deletes so recovery sees stale versions and
    // tombstones, not just fresh puts.
    for i in (0..24u32).step_by(5) {
        backend.put(&i.to_le_bytes(), &[0xAB; 9]).unwrap();
    }
    backend.delete(&3u32.to_le_bytes()).unwrap();
    drop(backend);

    let bytes = std::fs::read(&full).unwrap();
    let total = bytes.len() as u64;
    // Sweep the whole tail region (last ~200 bytes) byte by byte, plus a
    // few deep cuts.
    let mut cuts: Vec<u64> = (total.saturating_sub(200)..total).collect();
    cuts.extend([1, 2, total / 4, total / 2]);
    for cut in cuts {
        let path = dir.file("cut.log");
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();
        let mut reopened = LogFileBackend::open(&path)
            .unwrap_or_else(|e| panic!("cut at {cut}/{total} bytes failed to recover: {e}"));
        for key in reopened.keys() {
            let value = reopened
                .get(&key)
                .unwrap_or_else(|e| panic!("cut at {cut}: get failed: {e}"))
                .unwrap_or_else(|| panic!("cut at {cut}: key vanished between keys() and get()"));
            let i = u32::from_le_bytes(key[..4].try_into().unwrap());
            let expected_latest = if i % 5 == 0 {
                vec![0xAB; 9]
            } else {
                vec![i as u8; 1 + (i as usize % 17)]
            };
            let expected_first = vec![i as u8; 1 + (i as usize % 17)];
            assert!(
                value == expected_latest || value == expected_first,
                "cut at {cut}: key {i} recovered garbage ({} bytes)",
                value.len()
            );
        }
        // The recovered store stays usable: appends after recovery work.
        reopened.put(b"post-recovery", b"ok").unwrap();
        assert_eq!(
            reopened.get(b"post-recovery").unwrap().as_deref(),
            Some(&b"ok"[..])
        );
    }
}

/// The same recovery semantics hold when reached through the spec layer —
/// a `fault:`-wrapped logfile reopened via `open_at` (injection disabled,
/// `every = 0`) sees exactly the recovered contents.
#[test]
fn spec_level_reopen_goes_through_recovery_too() {
    let dir = TempDir::new("fault-spec-reopen").unwrap();
    let path = dir.file("store.log");
    {
        let mut backend = StorageSpec::LogFile.create_at(&path).unwrap();
        backend.put(b"alpha", b"1").unwrap();
        backend.put(b"beta", b"2").unwrap();
    }
    // Torn tail: chop the last 3 bytes off beta's frame.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    let spec = StorageSpec::Fault {
        seed: fault_seed(),
        every: 0,
        inner: FaultInner::LogFile,
    };
    let mut reopened = spec.open_at(&path).unwrap();
    assert_eq!(reopened.get(b"alpha").unwrap().as_deref(), Some(&b"1"[..]));
    assert_eq!(reopened.get(b"beta").unwrap(), None);
}

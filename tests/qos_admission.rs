//! Multi-tenant QoS conformance for the `QueryEngine` (ISSUE 9):
//!
//! * a tenant that exhausts its token-bucket quota is **shed** with
//!   [`BscError::Saturated`] — never deadlocked, never silently queued —
//!   and the decision replays exactly under the engine's virtual clock
//!   ([`QueryEngine::try_submit_at`]);
//! * the high-priority lane wins the queue without starving the normal
//!   lane (the `(w + 1) * (HIGH_LANE_BURST + 1)`-pop bound);
//! * **batched execution is byte-identical to serial**: coalesced
//!   followers of a same-epoch, same-key solve return the same node
//!   sequences and `f64` weight bits as an uncontended engine, for every
//!   algorithm × backend × shard count;
//! * per-tenant counters surface in [`QueryEngine::stats`].

use blogstable::core::solver::QueryPriority;
use blogstable::prelude::*;
use blogstable::service::admission::{AdmissionQueue, HIGH_LANE_BURST};
use blogstable::service::engine::{EngineConfig, QueryTicket, TenantQuota};

fn graph() -> ClusterGraph {
    ClusterGraphGenerator::new(SyntheticGraphParams {
        num_intervals: 6,
        nodes_per_interval: 40,
        avg_out_degree: 4,
        gap: 1,
        seed: 11,
    })
    .generate()
}

fn request(kind: AlgorithmKind, spec: StableClusterSpec, k: usize) -> QueryRequest {
    QueryRequest::new(kind, spec, k)
}

fn tenant_request(tenant: &str) -> QueryRequest {
    request(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 5)
        .options(SolverOptions::default().tenant(Some(tenant.to_string())))
}

fn assert_identical(expected: &Solution, got: &Solution, context: &str) {
    assert_eq!(
        expected.paths.len(),
        got.paths.len(),
        "{context}: result counts differ"
    );
    for (a, b) in expected.paths.iter().zip(got.paths.iter()) {
        assert_eq!(a.nodes(), b.nodes(), "{context}: node sequences differ");
        assert_eq!(
            a.weight().to_bits(),
            b.weight().to_bits(),
            "{context}: weights must be byte-identical"
        );
    }
}

/// Quota exhaustion must shed with `Saturated`, not block, not deadlock —
/// and the bucket must refill on the virtual clock, deterministically.
#[test]
fn quota_exhaustion_returns_saturated_and_refills_on_the_virtual_clock() {
    let mut engine = QueryEngine::new(
        EngineConfig::default()
            .workers(2)
            .quota(Some(TenantQuota::new(1, 2))),
    )
    .expect("engine starts");
    engine.install_graph(graph());

    // Burst of 2 admits exactly 2 at t=0; the 3rd sheds immediately.
    let mut tickets = Vec::new();
    for i in 0..2 {
        tickets.push(
            engine
                .try_submit_at(tenant_request("acme"), 0)
                .unwrap_or_else(|e| panic!("burst admission {i} must succeed: {e}")),
        );
    }
    match engine.try_submit_at(tenant_request("acme"), 0) {
        Err(BscError::Saturated { .. }) => {}
        other => panic!("exhausted quota must shed with Saturated, got {other:?}"),
    }
    // An untenanted query is never quota-shed.
    tickets.push(
        engine
            .try_submit_at(
                request(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(3), 5),
                0,
            )
            .expect("untenanted queries bypass quotas"),
    );
    // Another tenant has its own (full) bucket.
    tickets.push(
        engine
            .try_submit_at(tenant_request("globex"), 0)
            .expect("a fresh tenant starts with a full bucket"),
    );
    // One virtual second later the 1 qps rate has refilled one token.
    tickets.push(
        engine
            .try_submit_at(tenant_request("acme"), 1_000_000)
            .expect("the bucket refills on the virtual clock"),
    );
    match engine.try_submit_at(tenant_request("acme"), 1_000_000) {
        Err(BscError::Saturated { .. }) => {}
        other => panic!("only one token refilled, got {other:?}"),
    }
    for ticket in tickets {
        ticket.wait().expect("admitted queries complete");
    }

    let stats = engine.stats();
    assert_eq!(stats.quota_shed, 2);
    let acme = stats
        .tenants
        .iter()
        .find(|t| t.tenant == "acme")
        .expect("acme appears in stats");
    assert_eq!(acme.submitted, 5);
    assert_eq!(acme.admitted, 3);
    assert_eq!(acme.quota_shed, 2);
    let globex = stats
        .tenants
        .iter()
        .find(|t| t.tenant == "globex")
        .expect("globex appears in stats");
    assert_eq!(
        (globex.submitted, globex.admitted, globex.quota_shed),
        (1, 1, 0)
    );
    // stats.tenants is sorted by name.
    assert!(stats.tenants.windows(2).all(|w| w[0].tenant < w[1].tenant));
    engine.shutdown();
}

/// The starvation bound, driven adversarially: a normal-lane item is
/// popped within `(w + 1) * (HIGH_LANE_BURST + 1)` pops even when a new
/// high-priority item arrives before every single pop.
#[test]
fn the_normal_lane_starvation_bound_holds_under_continuous_high_pressure() {
    let queue: AdmissionQueue<&'static str> = AdmissionQueue::new(1024);
    let waiting = 3usize; // w: normal items queued ahead of the probe
    for _ in 0..waiting {
        queue
            .try_push("ahead", QueryPriority::Normal)
            .expect("push");
    }
    queue
        .try_push("probe", QueryPriority::Normal)
        .expect("push");
    let bound = (waiting + 1) * (HIGH_LANE_BURST + 1);
    let mut pops = 0usize;
    loop {
        // The adversary: always at least one high-priority item ready.
        queue.try_push("storm", QueryPriority::High).expect("push");
        let item = queue.pop().expect("queue is non-empty");
        pops += 1;
        assert!(
            pops <= bound,
            "probe not served within the {bound}-pop bound"
        );
        if item == "probe" {
            break;
        }
    }
}

/// End to end through the engine: with one worker pinned by a slow solve,
/// a high-priority query submitted *after* several normal ones is popped
/// first (its queue wait is strictly the shortest).
#[test]
fn the_high_priority_lane_overtakes_queued_normal_queries() {
    let mut engine = QueryEngine::new(
        EngineConfig::default()
            .workers(1)
            .queue_capacity(64)
            .cache_capacity(0),
    )
    .expect("engine starts");
    engine.install_graph(graph());

    // Pin the single worker so everything below queues behind it.
    let blocker = engine
        .submit(request(
            AlgorithmKind::Dfs,
            StableClusterSpec::FullPaths,
            10,
        ))
        .expect("blocker admitted");
    let normals: Vec<QueryTicket> = (0..4)
        .map(|i| {
            engine
                .submit(request(
                    AlgorithmKind::Bfs,
                    StableClusterSpec::ExactLength(2 + i),
                    5,
                ))
                .expect("normal admitted")
        })
        .collect();
    let high = engine
        .submit(
            request(AlgorithmKind::Bfs, StableClusterSpec::ExactLength(2), 7)
                .options(SolverOptions::default().priority(QueryPriority::High)),
        )
        .expect("high admitted");

    blocker.wait().expect("blocker completes");
    let high_wait = high
        .wait()
        .expect("high completes")
        .solution
        .stats
        .queue_wait_micros;
    for (i, normal) in normals.into_iter().enumerate() {
        let wait = normal
            .wait()
            .expect("normal completes")
            .solution
            .stats
            .queue_wait_micros;
        assert!(
            high_wait < wait,
            "high-priority wait {high_wait}us must undercut normal #{i}'s {wait}us \
             (the high lane pops first)"
        );
    }
    engine.shutdown();
}

/// Every (algorithm, spec, backend, shards) combination whose coalesced
/// answers must match serial execution. Mirrors `tests/query_service.rs`.
fn combos() -> Vec<(AlgorithmKind, StableClusterSpec, StorageSpec, usize)> {
    let kinds = [
        AlgorithmKind::Bfs,
        AlgorithmKind::Dfs,
        AlgorithmKind::Ta,
        AlgorithmKind::Normalized,
        AlgorithmKind::Auto { budget_bytes: None },
    ];
    let mut combos = Vec::new();
    for kind in kinds {
        for backend in StorageSpec::ALL {
            for shards in [1usize, 3] {
                let spec = match kind {
                    AlgorithmKind::Normalized => {
                        if shards > 1 {
                            continue; // Problem 2 does not decompose
                        }
                        StableClusterSpec::Normalized { l_min: 2 }
                    }
                    AlgorithmKind::Ta if shards == 1 => StableClusterSpec::FullPaths,
                    _ => StableClusterSpec::ExactLength(2),
                };
                combos.push((kind, spec, backend, shards));
            }
        }
    }
    combos
}

/// Batched (coalesced) execution must be byte-identical to serial
/// execution for every algorithm × backend × shard count — and the
/// coalescing path must actually fire.
#[test]
fn batched_execution_is_byte_identical_to_serial_for_every_combo() {
    let graph = graph();

    // The serial reference: an uncontended engine answering one query at a
    // time. (The engine itself is conformance-tested against the one-shot
    // pipeline in tests/query_service.rs; here the subject is batching.)
    let mut serial = QueryEngine::new(EngineConfig::default().workers(1)).expect("engine starts");
    serial.install_graph(graph.clone());
    let mut expected = Vec::new();
    for (kind, spec, backend, shards) in combos() {
        let response = serial
            .query(
                request(kind, spec, 10)
                    .options(SolverOptions::default().storage(backend).shards(shards)),
            )
            .unwrap_or_else(|e| panic!("serial {kind} {spec} {backend} {shards}: {e}"));
        expected.push(((kind, spec, backend, shards), response.solution));
    }
    serial.shutdown();

    // The batched run: one worker, no cache, so copies of a query pile up
    // behind a slow blocker and the leader's solve answers its followers.
    // Coalescing needs the copies queued before the leader finishes; the
    // blocker makes that overwhelmingly likely, and the outer retry
    // absorbs the rare miss (byte-identity is asserted unconditionally —
    // only the `coalesced > 0` proof retries).
    let copies = 3usize;
    let mut coalesced_total = 0u64;
    for attempt in 0..10 {
        let mut engine = QueryEngine::new(
            EngineConfig::default()
                .workers(1)
                .queue_capacity(256)
                .cache_capacity(0),
        )
        .expect("engine starts");
        engine.install_graph(graph.clone());
        for ((kind, spec, backend, shards), serial_solution) in &expected {
            let context = format!("{kind} {spec} {backend} shards={shards}");
            let blocker = engine
                .submit(request(AlgorithmKind::Dfs, StableClusterSpec::FullPaths, 9))
                .expect("blocker admitted");
            let tickets: Vec<QueryTicket> =
                (0..copies)
                    .map(|_| {
                        engine
                            .submit(request(*kind, *spec, 10).options(
                                SolverOptions::default().storage(*backend).shards(*shards),
                            ))
                            .expect("copy admitted")
                    })
                    .collect();
            blocker.wait().expect("blocker completes");
            for (copy, ticket) in tickets.into_iter().enumerate() {
                let response = ticket
                    .wait()
                    .unwrap_or_else(|e| panic!("{context} copy {copy}: {e}"));
                assert_identical(
                    serial_solution,
                    &response.solution,
                    &format!("{context} copy {copy}"),
                );
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.errors, 0);
        coalesced_total = stats.coalesced;
        engine.shutdown();
        if coalesced_total > 0 {
            break;
        }
        eprintln!("attempt {attempt}: no coalescing observed, retrying");
    }
    assert!(
        coalesced_total > 0,
        "the coalescing path never fired across 10 attempts"
    );
}

//! End-to-end integration test: the full pipeline on the scripted
//! January-2007 week recovers the paper's qualitative findings — per-event
//! keyword clusters (Figures 1, 2), a stable cluster with a gap (Figure 4),
//! topic drift (Figure 15) and a full-week stable cluster (Figure 16).

use blogstable::core::bfs::BfsStableClusters;
use blogstable::core::problem::KlStableParams;
use blogstable::graph::prune::PruneConfig;
use blogstable::prelude::*;

fn run_week() -> (
    blogstable::corpus::synthetic::GeneratedCorpus,
    blogstable::core::pipeline::PipelineOutcome,
) {
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    let params = PipelineParams {
        gap: 2,
        k: 50,
        prune: PruneConfig::paper().with_min_pair_count(3),
        ..PipelineParams::default()
    }
    .full_paths();
    let outcome = Pipeline::new(params)
        .expect("valid params")
        .run(&corpus)
        .expect("pipeline");
    (corpus, outcome)
}

fn cluster_with<'a>(
    outcome: &'a blogstable::core::pipeline::PipelineOutcome,
    corpus: &blogstable::corpus::synthetic::GeneratedCorpus,
    day: usize,
    keywords: &[&str],
) -> Option<&'a KeywordCluster> {
    let ids: Vec<KeywordId> = keywords
        .iter()
        .map(|k| corpus.vocabulary.get(k).expect("keyword interned"))
        .collect();
    outcome.interval_clusters[day]
        .iter()
        .find(|c| ids.iter().all(|id| c.contains(*id)))
}

#[test]
fn figure1_stem_cell_cluster_on_jan8() {
    let (corpus, outcome) = run_week();
    let cluster = cluster_with(&outcome, &corpus, 2, &["stem", "cell", "amniot"])
        .expect("stem-cell cluster on Jan 8");
    // A compact topical cluster, not a giant merged component.
    assert!(cluster.len() <= 20, "cluster too large: {}", cluster.len());
    assert!(cluster.len() >= 4);
}

#[test]
fn figure2_beckham_cluster_on_jan12() {
    let (corpus, outcome) = run_week();
    let cluster = cluster_with(&outcome, &corpus, 6, &["beckham", "mls", "galaxi"])
        .expect("Beckham cluster on Jan 12");
    assert!(cluster.len() <= 20);
}

#[test]
fn figure4_gap_stable_cluster_for_fa_cup() {
    let (corpus, outcome) = run_week();
    // The FA-cup chatter exists on Jan 6 and again on Jan 9/10, with nothing
    // on Jan 7-8: a stable cluster with a gap.
    let liverpool = corpus.vocabulary.get("liverpool").unwrap();
    let arsenal = corpus.vocabulary.get("arsenal").unwrap();
    let mut gap_path_found = false;
    for l in [4u32, 3] {
        let paths = BfsStableClusters::new(KlStableParams::new(1000, l))
            .run(&outcome.cluster_graph)
            .unwrap();
        gap_path_found |= paths.iter().any(|p| {
            p.nodes().iter().all(|n| {
                outcome.cluster_at(*n).contains(liverpool)
                    && outcome.cluster_at(*n).contains(arsenal)
            }) && p
                .nodes()
                .windows(2)
                .any(|w| w[1].interval - w[0].interval >= 2)
        });
        if gap_path_found {
            break;
        }
    }
    assert!(
        gap_path_found,
        "expected an FA-cup path spanning the Jan 7-8 gap"
    );
}

#[test]
fn figure15_topic_drift_iphone_to_cisco() {
    let (corpus, outcome) = run_week();
    let iphon = corpus.vocabulary.get("iphon").unwrap();
    let macworld = corpus.vocabulary.get("macworld").unwrap();
    let lawsuit = corpus.vocabulary.get("lawsuit").unwrap();
    let paths = BfsStableClusters::new(KlStableParams::new(300, 3))
        .run(&outcome.cluster_graph)
        .unwrap();
    let drift = paths.iter().find(|p| {
        let clusters: Vec<_> = p.nodes().iter().map(|n| outcome.cluster_at(*n)).collect();
        clusters.iter().all(|c| c.contains(iphon))
            && clusters.first().is_some_and(|c| c.contains(macworld))
            && clusters.last().is_some_and(|c| c.contains(lawsuit))
    });
    assert!(
        drift.is_some(),
        "expected an iPhone path drifting from launch keywords to lawsuit keywords"
    );
}

#[test]
fn figure16_full_week_somalia_path() {
    let (corpus, outcome) = run_week();
    let somalia = corpus.vocabulary.get("somalia").unwrap();
    let full_week = outcome.stable_paths.iter().find(|p| {
        p.length() == 6
            && p.nodes()
                .iter()
                .all(|n| outcome.cluster_at(*n).contains(somalia))
    });
    assert!(
        full_week.is_some(),
        "expected a full-week stable cluster for the Somalia event"
    );
}

#[test]
fn background_words_do_not_form_giant_clusters() {
    let (_, outcome) = run_week();
    for (day, clusters) in outcome.interval_clusters.iter().enumerate() {
        let largest = clusters.iter().map(|c| c.len()).max().unwrap_or(0);
        assert!(
            largest < 60,
            "day {day}: largest cluster has {largest} keywords; chi^2/rho pruning failed"
        );
        assert!(clusters.len() >= 10, "day {day}: too few clusters");
    }
}

#[test]
fn normalized_pipeline_returns_dense_paths() {
    let corpus = SyntheticBlogosphere::new(SyntheticConfig::small()).generate();
    let params = PipelineParams {
        gap: 2,
        k: 10,
        prune: PruneConfig::paper().with_min_pair_count(3),
        ..PipelineParams::default()
    }
    .normalized(2);
    let outcome = Pipeline::new(params)
        .expect("valid params")
        .run(&corpus)
        .expect("pipeline");
    assert!(!outcome.stable_paths.is_empty());
    for path in &outcome.stable_paths {
        assert!(path.length() >= 2);
        assert!(path.stability() > 0.0);
    }
    // Results are sorted by stability.
    for pair in outcome.stable_paths.windows(2) {
        assert!(pair[0].stability() >= pair[1].stability() - 1e-12);
    }
}
